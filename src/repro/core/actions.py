"""Runtime corrective actions A1–A4 (plus the SAVE idiom of Listing 2).

Each action implements ``execute(ctx)`` where ``ctx`` is an
:class:`ActionContext` carrying the violation details and the monitor host.
Actions are small and typed on purpose (§4.2): a closed action vocabulary is
what makes compilation, overhead bounding, and crash-free reasoning
tractable.
"""

from repro.core.errors import ActionError


class ActionContext:
    """What an action may see when it runs."""

    __slots__ = ("host", "guardrail", "rule_source", "now", "payload", "rule_values")

    def __init__(self, host, guardrail, rule_source, now, payload, rule_values=None):
        self.host = host
        self.guardrail = guardrail
        self.rule_source = rule_source
        self.now = now
        self.payload = payload
        self.rule_values = rule_values or {}


class Action:
    kind = "action"

    def execute(self, ctx):
        raise NotImplementedError

    def trace_detail(self):
        """Short static description attached to this action's trace events."""
        return ""

    def __repr__(self):
        return "{}()".format(type(self).__name__)


class ReportAction(Action):
    """A1 — log system context for offline analysis.

    ``extra_programs`` are compiled expressions whose values are attached to
    the report (e.g. the inputs that triggered the violation).
    """

    kind = "REPORT"

    def __init__(self, extra_programs=(), extra_sources=()):
        self.extra_programs = list(extra_programs)
        self.extra_sources = list(extra_sources)

    def execute(self, ctx):
        from repro.core.expr import EvalContext

        extras = {}
        for source, program in zip(self.extra_sources, self.extra_programs):
            eval_ctx = EvalContext(ctx.host.store, ctx.now, ctx.payload)
            extras[source] = program(eval_ctx)
        ctx.host.reporter.report(
            guardrail=ctx.guardrail,
            rule=ctx.rule_source,
            time=ctx.now,
            payload=dict(ctx.payload),
            store_snapshot=ctx.host.store.snapshot(),
            extras=extras,
        )


class ReplaceAction(Action):
    """A2 — swap a misbehaving policy slot for a known-safe fallback."""

    kind = "REPLACE"

    def __init__(self, old_function, new_function):
        self.old_function = old_function
        self.new_function = new_function

    def trace_detail(self):
        return "{} -> {}".format(self.old_function, self.new_function)

    def execute(self, ctx):
        ctx.host.functions.replace(self.old_function, self.new_function)
        ctx.host.reporter.note(
            "REPLACE", ctx.guardrail, ctx.now,
            detail="{} -> {}".format(self.old_function, self.new_function),
        )


class RetrainAction(Action):
    """A3 — queue asynchronous retraining on newer data.

    Retraining is envisioned offline (§3.2), so the action only enqueues a
    request.  The queue rate-limits per model to protect against adversarial
    workloads that intentionally trigger frequent retraining.
    """

    kind = "RETRAIN"

    def __init__(self, model, input_program=None, input_source=None):
        self.model = model
        self.input_program = input_program
        self.input_source = input_source

    def trace_detail(self):
        return "model={}".format(self.model)

    def execute(self, ctx):
        data_ref = None
        if self.input_program is not None:
            from repro.core.expr import EvalContext

            eval_ctx = EvalContext(ctx.host.store, ctx.now, ctx.payload)
            data_ref = self.input_program(eval_ctx)
        accepted = ctx.host.retrain_queue.request(
            self.model, ctx.now, data_ref=data_ref, requested_by=ctx.guardrail
        )
        ctx.host.reporter.note(
            "RETRAIN", ctx.guardrail, ctx.now,
            detail="model={} accepted={}".format(self.model, accepted),
        )


class DeprioritizeAction(Action):
    """A4 — change the workload: deprioritize (or kill) tasks.

    ``priorities`` pair with ``targets``; a priority of 0 or below means
    "kill/evict", mirroring the OOM-killer analogy in the paper.
    """

    kind = "DEPRIORITIZE"

    def __init__(self, targets, priorities):
        if len(targets) != len(priorities):
            raise ActionError(
                "DEPRIORITIZE: {} targets but {} priorities".format(
                    len(targets), len(priorities)
                )
            )
        self.targets = list(targets)
        self.priorities = list(priorities)

    def trace_detail(self):
        return ", ".join(
            "{}={}".format(t, p) for t, p in zip(self.targets, self.priorities)
        )

    def execute(self, ctx):
        ctx.host.task_controller.deprioritize(self.targets, self.priorities)
        ctx.host.reporter.note(
            "DEPRIORITIZE", ctx.guardrail, ctx.now,
            detail=", ".join(
                "{}={}".format(t, p) for t, p in zip(self.targets, self.priorities)
            ),
        )


class SaveAction(Action):
    """Write a value to the feature store when the rule is violated.

    This is how Listing 2 disables the LinnOS model: the submit path reads
    ``ml_enabled`` from the store on every I/O.
    """

    kind = "SAVE"

    def __init__(self, key, program, source):
        self.key = key
        self.program = program
        self.source = source

    def trace_detail(self):
        return "{} = {}".format(self.key, self.source)

    def execute(self, ctx):
        from repro.core.expr import EvalContext

        eval_ctx = EvalContext(ctx.host.store, ctx.now, ctx.payload)
        value = self.program(eval_ctx)
        ctx.host.store.save(self.key, value)
        ctx.host.reporter.note(
            "SAVE", ctx.guardrail, ctx.now,
            detail="{} = {!r}".format(self.key, value),
        )

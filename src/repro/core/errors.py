"""Exception hierarchy for the guardrail framework."""


class GuardrailError(Exception):
    """Base class for all guardrail-framework errors."""


class SpecError(GuardrailError):
    """A guardrail specification is structurally or semantically invalid."""


class ParseError(SpecError):
    """The DSL text could not be parsed.

    Carries the source line/column so spec authors get a pointer into their
    guardrail file.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = " at line {}".format(line)
            if column is not None:
                location += ", column {}".format(column)
        super().__init__(message + location)
        self.line = line
        self.column = column


class CompileError(GuardrailError):
    """A valid spec could not be compiled into a monitor."""


class VerifierError(CompileError):
    """The static verifier rejected a compiled monitor.

    Mirrors the eBPF verifier: a monitor whose per-check cost cannot be
    bounded must not be loaded into the kernel.
    """


class StoreError(GuardrailError):
    """Invalid feature-store usage (bad key, type mismatch, ...)."""


class ActionError(GuardrailError):
    """An action could not be executed (unknown fallback, missing trainer...)."""


class FaultError(GuardrailError):
    """A fault-injection plan is invalid or cannot be installed."""

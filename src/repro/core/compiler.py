"""Compile guardrail specs into loadable monitors (§3.3).

``GuardrailCompiler`` is the pipeline front door::

    compiler = GuardrailCompiler()
    compiled = compiler.compile(spec_text_or_ast)
    monitor = compiled.instantiate(host)   # or manager.load(compiled)

Compilation parses (when given text), compiles each rule expression into a
bounded program, resolves trigger parameters, lowers action specs to runtime
actions, and runs the static verifier.  The result is host-independent and
can be instantiated against any :class:`~repro.core.host.MonitorHost`.
"""

from repro.core.actions import (
    DeprioritizeAction,
    ReplaceAction,
    ReportAction,
    RetrainAction,
    SaveAction,
)
from repro.core.errors import CompileError
from repro.core.expr import EvalContext, compile_expression, compile_to_vm, static_cost
from repro.core.expr.compile import _is_constant, fusion_params
from repro.core.monitor import GuardrailMonitor
from repro.core.spec import ast as A
from repro.core.spec import parse_guardrail
from repro.core.verifier import VerifierConfig, verify


def _lower_aggregates(expr, registry):
    """Replace Aggregate nodes with LOADs of their derived keys.

    ``registry`` maps derived name -> (function, key, arg, name) and
    accumulates across rules so shared aggregates register once.
    """
    if isinstance(expr, A.Aggregate):
        name = expr.derived_name()
        registry[name] = (expr.function, expr.key, expr.arg, name)
        return A.Load(name)
    if isinstance(expr, A.UnaryOp):
        return A.UnaryOp(expr.op, _lower_aggregates(expr.operand, registry))
    if isinstance(expr, A.BinaryOp):
        return A.BinaryOp(expr.op,
                          _lower_aggregates(expr.left, registry),
                          _lower_aggregates(expr.right, registry))
    if isinstance(expr, A.Call):
        return A.Call(expr.function,
                      [_lower_aggregates(arg, registry) for arg in expr.args])
    return expr


class _NoStore:
    """Stand-in store for compile-time constant evaluation: LOAD is illegal."""

    def load(self, key, default=None):
        raise CompileError(
            "LOAD({}) cannot appear in a trigger parameter — trigger "
            "parameters must be compile-time constants".format(key)
        )


class CompiledGuardrail:
    """A verified, host-independent guardrail ready to instantiate."""

    def __init__(self, spec, rules, trigger_params, actions, verification,
                 cooldown=0, aggregates=(), rule_lanes=(),
                 closure_programs=(), vm_programs=()):
        self.spec = spec
        self.name = spec.name
        self.rules = rules                  # [(source, program, cost)]
        self.trigger_params = trigger_params  # [('timer', start, interval, stop) | ('function', name)]
        self.actions = actions
        self.verification = verification
        self.cooldown = cooldown
        # [(function, source_key, arg, derived_name)] — derived keys the
        # monitor must ensure exist in the host's feature store.
        self.aggregates = list(aggregates)
        # Per-rule execution lane ("closure" | "vm") plus both compiled
        # backends, aligned with ``rules``.  The closure build is the
        # reference implementation; the VM build additionally supports
        # columnar batch evaluation (repro.core.expr.vm.eval_columns).
        self.rule_lanes = list(rule_lanes) or ["closure"] * len(rules)
        self.closure_programs = list(closure_programs)
        self.vm_programs = list(vm_programs)

    def register_aggregates(self, store):
        """Idempotently create the derived keys this guardrail's rules use.

        Names encode function and parameters, so an existing key with the
        same name is the same estimator (possibly registered by another
        guardrail) and is reused.
        """
        for function, key, arg, name in self.aggregates:
            if name in store:
                continue
            if function == "AVG":
                store.derive_time_average(key, int(arg), name=name)
            elif function == "RATE":
                store.derive_rate(key, int(arg), name=name)
            elif function == "EWMA":
                store.derive_ewma(key, float(arg), name=name)
            else:  # P50 / P95 / P99
                store.derive_quantile(key, int(function[1:]) / 100.0,
                                      name=name)

    def instantiate(self, host):
        """Bind to a host, producing an unarmed :class:`GuardrailMonitor`."""
        self.register_aggregates(host.store)
        return GuardrailMonitor(self, host)


class GuardrailCompiler:
    """Spec (text or AST) -> :class:`CompiledGuardrail`."""

    LANES = ("auto", "closure", "vm")

    def __init__(self, verifier_config=None, env=None, lane="auto"):
        self.verifier_config = (
            verifier_config if verifier_config is not None else VerifierConfig()
        )
        # Compile-time constant bindings available in trigger parameters and
        # rules, e.g. {'memory_limit': 1 << 30}.
        self.env = dict(env or {})
        # Rule execution lane: "closure" and "vm" force a backend for every
        # rule; "auto" picks per rule shape (see _select_lane).
        if lane not in self.LANES:
            raise CompileError(
                "unknown rule lane {!r} (expected one of {})".format(
                    lane, "/".join(self.LANES)))
        self.lane = lane

    def compile(self, spec, cooldown=0):
        """Compile and verify one guardrail.

        ``cooldown`` (ns) suppresses re-firing actions for a violation of the
        same rule within the window — real deployments want this so a single
        bad second doesn't dispatch a thousand identical REPLACEs.
        """
        if isinstance(spec, str):
            spec = parse_guardrail(spec)
        if not isinstance(spec, A.GuardrailSpec):
            raise CompileError("expected DSL text or a GuardrailSpec, got {!r}".format(spec))

        rules = []
        rule_lanes = []
        closure_programs = []
        vm_programs = []
        aggregates = {}
        for rule in spec.rules:
            lowered = _lower_aggregates(rule.expression, aggregates)
            closure = compile_expression(lowered)
            vm_program = compile_to_vm(lowered)
            cost = static_cost(lowered)
            lane = self._select_lane(lowered)
            program = closure if lane == "closure" else vm_program
            # Report the author's syntax (AVG(...)), evaluate the lowering.
            rules.append((rule.to_source(), program, cost))
            rule_lanes.append(lane)
            closure_programs.append(closure)
            vm_programs.append(vm_program)

        trigger_params = []
        timer_intervals = []
        has_function_trigger = False
        for trigger in spec.triggers:
            if isinstance(trigger, A.TimerTriggerSpec):
                start = self._constant(trigger.start, allow_start_time=True)
                interval = self._constant(trigger.interval)
                stop = (
                    self._constant(trigger.stop) if trigger.stop is not None else None
                )
                if interval is None or interval <= 0:
                    raise CompileError(
                        "guardrail {!r}: TIMER interval must be a positive "
                        "constant".format(spec.name)
                    )
                trigger_params.append(("timer", start, int(interval),
                                       None if stop is None else int(stop)))
                timer_intervals.append(int(interval))
            else:
                trigger_params.append(("function", trigger.function_name))
                has_function_trigger = True

        actions = [self._lower_action(a, aggregates) for a in spec.actions]

        verification = verify(
            spec,
            rule_costs=[cost for _, _, cost in rules],
            timer_intervals=timer_intervals,
            has_function_trigger=has_function_trigger,
            config=self.verifier_config,
        )
        return CompiledGuardrail(spec, rules, trigger_params, actions,
                                 verification, cooldown=cooldown,
                                 aggregates=list(aggregates.values()),
                                 rule_lanes=rule_lanes,
                                 closure_programs=closure_programs,
                                 vm_programs=vm_programs)

    def _select_lane(self, lowered):
        """Pick the execution backend for one lowered rule expression.

        Measured on the hot-path bench: a fused threshold (or folded
        constant) runs ~2x faster as the single closure it compiles to,
        while composite rules are within noise of the closure tree on the
        VM — and the VM program is what the columnar batch lanes execute,
        so "auto" sends every multi-node rule there.
        """
        if self.lane != "auto":
            return self.lane
        if _is_constant(lowered) or fusion_params(lowered) is not None:
            return "closure"
        return "vm"

    def _constant(self, expr, allow_start_time=False):
        """Evaluate a compile-time constant trigger parameter."""
        if allow_start_time and isinstance(expr, A.Name) and expr.identifier == "start_time":
            return None  # symbolic "when the monitor is loaded"
        program = compile_expression(expr)
        ctx = EvalContext(_NoStore(), now=0, env=self.env)
        value = program(ctx)
        if value is None:
            raise CompileError(
                "trigger parameter {!r} is not a compile-time constant "
                "(unbound name?)".format(expr.to_source())
            )
        return value

    def _lower_action(self, action, aggregates):
        if isinstance(action, A.ReportSpec):
            programs = [
                compile_expression(_lower_aggregates(arg, aggregates))
                for arg in action.args
            ]
            sources = [arg.to_source() for arg in action.args]
            return ReportAction(programs, sources)
        if isinstance(action, A.ReplaceSpec):
            return ReplaceAction(action.old_function, action.new_function)
        if isinstance(action, A.RetrainSpec):
            program = source = None
            if action.input_expr is not None:
                program = compile_expression(
                    _lower_aggregates(action.input_expr, aggregates))
                source = action.input_expr.to_source()
            return RetrainAction(action.model, program, source)
        if isinstance(action, A.DeprioritizeSpec):
            priorities = []
            for priority in action.priorities:
                value = self._constant(priority)
                priorities.append(value)
            return DeprioritizeAction(action.targets, priorities)
        if isinstance(action, A.SaveSpec):
            program = compile_expression(
                _lower_aggregates(action.expression, aggregates))
            return SaveAction(action.key, program, action.expression.to_source())
        raise CompileError("cannot lower action {!r}".format(action))

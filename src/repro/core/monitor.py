"""The guardrail monitor runtime.

A :class:`GuardrailMonitor` is one compiled guardrail bound to one host.
When armed, its triggers deliver ``fire(payload)`` callbacks; each firing
evaluates every rule against the feature store and the trigger payload.  A
rule that evaluates to ``False`` is a violation: the monitor records it and
dispatches the guardrail's actions (subject to the cooldown).  ``None``
results (missing data) are counted separately and never violate.

Every evaluation is charged to the monitor's :class:`OverheadAccount`, so
benchmarks — and P5 guardrails watching other guardrails — can see exactly
what monitoring costs.
"""

from repro.core.actions import ActionContext
from repro.core.errors import GuardrailError
from repro.core.expr import EvalContext
from repro.core.overhead import OverheadAccount
from repro.core.triggers import FunctionTrigger, TimerTrigger
from repro.trace.tracer import TRACER


class Violation:
    """One recorded rule violation."""

    __slots__ = ("guardrail", "rule", "time", "payload")

    def __init__(self, guardrail, rule, time, payload):
        self.guardrail = guardrail
        self.rule = rule
        self.time = time
        self.payload = payload

    def __repr__(self):
        return "Violation({!r}, rule={!r}, t={})".format(
            self.guardrail, self.rule, self.time
        )


class GuardrailMonitor:
    """Runtime state of one loaded guardrail."""

    def __init__(self, compiled, host, cost_model=None):
        self.compiled = compiled
        self.name = compiled.name
        self.host = host
        self.overhead = OverheadAccount(cost_model)
        # Hot-path aliases: check() runs per trigger firing, so the stable
        # attribute chains (host.engine, host.store, compiled.rules) are
        # resolved once here.  The store is aliased by *object* — fault
        # injection swaps the load method on the instance, never the
        # instance itself — and rule programs resolve ctx.store.load late
        # for the same reason.
        self._engine = host.engine
        self._store = host.store
        self._rules = compiled.rules
        self.triggers = [self._build_trigger(p) for p in compiled.trigger_params]
        self.enabled = False
        self.check_count = 0
        self.violation_count = 0
        self.inconclusive_count = 0
        self.violations = []
        self.max_recorded_violations = 10_000
        self._last_fired = {}  # rule source -> last action-dispatch time
        self.action_dispatch_count = 0
        self.action_error_count = 0
        self.rule_crash_count = 0
        self.action_crash_count = 0

    def _build_trigger(self, params):
        if params[0] == "timer":
            _, start, interval, stop = params
            return TimerTrigger(interval, start=start, stop=stop)
        _, function_name = params
        return FunctionTrigger(function_name)

    # -- lifecycle ---------------------------------------------------------

    def arm(self):
        """Attach all triggers; the monitor starts checking."""
        if self.enabled:
            return
        self.enabled = True
        for trigger in self.triggers:
            trigger.arm(self.host, self._fire)

    def disarm(self):
        """Detach all triggers; the monitor stops checking."""
        if not self.enabled:
            return
        self.enabled = False
        for trigger in self.triggers:
            trigger.disarm()

    # -- evaluation -----------------------------------------------------------

    def _fire(self, payload):
        if not self.enabled:
            return
        self.check(payload)

    def check(self, payload=None):
        """Evaluate all rules once; returns the list of new violations.

        The untraced body below is the hot lane every trigger firing runs
        through; the traced variant (identical semantics plus span/event
        emission) lives in :meth:`_check_traced` so this one carries no
        per-rule tracing branches.
        """
        if TRACER.active:
            return self._check_traced(payload)
        payload = payload or {}
        now = self._engine.now
        self.check_count += 1
        crashes_before = self.rule_crash_count + self.action_crash_count
        new_violations = []
        # One EvalContext for the whole check, reset between rules, with the
        # store and overhead lookups hoisted out of the rule loop — rules in
        # a check share everything but their op counter.
        ctx = EvalContext(self._store, now, payload)
        charge_check = self.overhead.charge_check
        for source, program, _cost in self._rules:
            ctx.ops = 0
            try:
                result = program(ctx)
            except Exception as error:
                # Crash-only: a rule program blowing up (corrupt store data,
                # a broken compiled expression) is contained like missing
                # data, counted, and escalated to the supervisor's breaker.
                # Both rule backends (closure tree and bytecode VM) charge
                # ctx.ops incrementally at identical evaluation points, so
                # the partial charge_check below is lane-independent even
                # when a fault-injected store.load raises mid-rule.
                self.rule_crash_count += 1
                charge_check(ctx.ops)
                self.host.supervisor.record_rule_crash(self, error, now)
                continue
            charge_check(ctx.ops)
            if result is None:
                self.inconclusive_count += 1
                continue
            if not result:
                violation = Violation(self.name, source, now, payload)
                self.violation_count += 1
                if len(self.violations) < self.max_recorded_violations:
                    self.violations.append(violation)
                new_violations.append(violation)
                self._maybe_dispatch(violation)
        if crashes_before:
            # This guardrail has crashed before: a crash-free check is the
            # success signal that closes a half-open breaker.  Guardrails
            # that never crashed skip the call entirely.
            if self.rule_crash_count + self.action_crash_count == crashes_before:
                self.host.supervisor.record_check_success(self.name, now)
        return new_violations

    def _check_traced(self, payload=None):
        """check() with span/event emission; only runs while tracing."""
        payload = payload or {}
        now = self._engine.now
        self.check_count += 1
        span = TRACER.begin("monitor.check", self.name, now,
                            guardrail=self.name)
        cost_before = self.overhead.simulated_ns
        crashes_before = self.rule_crash_count + self.action_crash_count
        new_violations = []
        ctx = EvalContext(self._store, now, payload)
        charge_check = self.overhead.charge_check
        for source, program, _cost in self._rules:
            ctx.ops = 0
            try:
                result = program(ctx)
            except Exception as error:
                self.rule_crash_count += 1
                charge_check(ctx.ops)
                TRACER.emit("rule.eval", source, now, guardrail=self.name,
                            args={"error": type(error).__name__})
                self.host.supervisor.record_rule_crash(self, error, now)
                continue
            charge_check(ctx.ops)
            TRACER.emit("rule.eval", source, now, guardrail=self.name,
                        args={"result": result, "ops": ctx.ops})
            if result is None:
                self.inconclusive_count += 1
                continue
            if not result:
                violation = Violation(self.name, source, now, payload)
                self.violation_count += 1
                if len(self.violations) < self.max_recorded_violations:
                    self.violations.append(violation)
                new_violations.append(violation)
                TRACER.emit("monitor.check", "violation", now,
                            guardrail=self.name, args={"rule": source})
                TRACER.note_violation(self.name)
                self._maybe_dispatch(violation)
        cost = self.overhead.simulated_ns - cost_before
        TRACER.note_check(self.name, cost)
        TRACER.end(span, now + cost,
                   args={"violations": len(new_violations)})
        if crashes_before:
            if self.rule_crash_count + self.action_crash_count == crashes_before:
                self.host.supervisor.record_check_success(self.name, now)
        return new_violations

    def _maybe_dispatch(self, violation):
        cooldown = self.compiled.cooldown
        if cooldown:
            last = self._last_fired.get(violation.rule)
            if last is not None and violation.time - last < cooldown:
                return
        self._last_fired[violation.rule] = violation.time
        ctx = ActionContext(
            self.host, self.name, violation.rule, violation.time, violation.payload
        )
        tracing = TRACER.active
        for action in self.compiled.actions:
            try:
                action.execute(ctx)
            except GuardrailError as error:
                # A misconfigured action (unknown slot, bad store key...) is
                # contained and reported — a monitor must never take the
                # kernel down, even when its remedy is broken.
                self.action_error_count += 1
                self.host.reporter.note(
                    "ACTION_ERROR", self.name, violation.time,
                    detail="{}: {}".format(action.kind, error))
                # note_action() is skipped: the exact counters mirror
                # action_dispatch_count, which only counts successes.
                if tracing:
                    TRACER.emit("action", action.kind, violation.time,
                                guardrail=self.name,
                                args={"rule": violation.rule, "error": str(error)})
            except Exception as error:
                # Anything else (KeyError, ZeroDivisionError...) is a crash,
                # not a misconfiguration — contained all the same, counted
                # separately, and escalated to the supervisor's breaker.
                self.action_crash_count += 1
                if tracing:
                    TRACER.emit("action", action.kind, violation.time,
                                guardrail=self.name,
                                args={"rule": violation.rule,
                                      "crash": type(error).__name__})
                self.host.supervisor.record_action_crash(
                    self, error, violation.time)
            else:
                self.action_dispatch_count += 1
                if tracing:
                    TRACER.emit("action", action.kind, violation.time,
                                guardrail=self.name,
                                args={"rule": violation.rule,
                                      "detail": action.trace_detail()})
                    TRACER.note_action(self.name)
            self.overhead.charge_action()

    # -- introspection -----------------------------------------------------------

    @property
    def rule_sources(self):
        return [source for source, _, _ in self.compiled.rules]

    def stats(self):
        return {
            "name": self.name,
            "enabled": self.enabled,
            "checks": self.check_count,
            "violations": self.violation_count,
            "inconclusive": self.inconclusive_count,
            "action_dispatches": self.action_dispatch_count,
            "action_errors": self.action_error_count,
            "rule_crashes": self.rule_crash_count,
            "action_crashes": self.action_crash_count,
            "overhead": self.overhead.snapshot(),
        }

    def __repr__(self):
        return "GuardrailMonitor({!r}, checks={}, violations={})".format(
            self.name, self.check_count, self.violation_count
        )

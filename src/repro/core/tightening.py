"""Auto-tightening of relaxed properties (§3.3).

"OS practitioners may find it better to deploy guardrails with relaxed
properties and automatically tighten the properties based on system
behavior."

An :class:`AutoTightener` watches the feature-store key a rule constrains,
collects its steady-state behavior, and periodically recompiles the
guardrail (via ``GuardrailManager.update`` — no reboot) with a threshold
set just above the observed quantile.  The guardrail starts permissive and
converges to a tight envelope around normal behavior; a later regression
that would have hidden under the relaxed threshold now violates promptly.
"""

import math

from repro.detect.quantiles import P2Quantile


class AutoTightener:
    """Tightens one upper-bound threshold toward observed behavior.

    ``spec_builder(threshold)`` must return the guardrail (DSL text or
    spec) parameterized by the threshold — typically a property template
    call wrapped in a lambda.

    The threshold never tightens below ``floor`` and, being an envelope, it
    only ever decreases (for upper bounds).  ``quantile`` and ``margin``
    trade detection latency against false positives.
    """

    def __init__(self, manager, guardrail_name, key, spec_builder,
                 initial_threshold, interval, quantile=0.99, margin=1.5,
                 floor=0.0, min_samples=50):
        self.manager = manager
        self.guardrail_name = guardrail_name
        self.key = key
        self.spec_builder = spec_builder
        self.threshold = initial_threshold
        self.interval = interval
        self.quantile = quantile
        self.margin = margin
        self.floor = floor
        self.min_samples = min_samples
        self._estimator = P2Quantile(quantile)
        self._sample_count = 0
        self._unsubscribe = None
        self._timer = None
        self._stopped = False
        self.tighten_count = 0
        self.history = [(0, initial_threshold)]

    def start(self):
        """Load the relaxed guardrail and begin observing."""
        host = self.manager.host
        # The history timeline must say when observation actually began:
        # a tightener started at engine time T>0 did not watch [0, T).
        self.history[0] = (host.engine.now, self.threshold)
        self._stopped = False
        self.manager.load(self.spec_builder(self.threshold))
        self._unsubscribe = host.store.subscribe(self._on_change)
        self._timer = host.engine.schedule(self.interval, self._tick)
        return self

    def stop(self):
        self._stopped = True
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_change(self, key, value, now):
        # bool is an int subclass; flag keys must not feed float(True)
        # into the quantile estimator.
        if (key != self.key or isinstance(value, bool)
                or not isinstance(value, (int, float))):
            return
        if isinstance(value, float) and math.isnan(value):
            return
        self._estimator.update(float(value))
        self._sample_count += 1

    def _tick(self):
        self._timer = None
        self._maybe_tighten()
        if self._stopped:
            return  # stop() ran inside _maybe_tighten (manager teardown)
        host = self.manager.host
        self._timer = host.engine.schedule(self.interval, self._tick)

    def _maybe_tighten(self):
        if self._sample_count < self.min_samples:
            return
        estimate = self._estimator.value
        if isinstance(estimate, float) and math.isnan(estimate):
            return
        candidate = max(estimate * self.margin, self.floor)
        if candidate >= self.threshold:
            return  # envelope only shrinks
        self.threshold = candidate
        self.tighten_count += 1
        self.history.append((self.manager.host.engine.now, candidate))
        self.manager.update(self.spec_builder(candidate))

"""The global feature store of §4.3.

Guardrails interact with system-wide state exclusively through
``SAVE(key, value)`` and ``LOAD(key)``.  Kernel subsystems (and actions)
save raw metrics; rules load them.  On top of raw keys the store supports:

- **derived keys** — registered streaming aggregators (moving average, rate,
  EWMA, quantile) that update whenever their source key is saved, so a rule
  can just ``LOAD(page_fault_latency.avg)`` instead of every guardrail
  re-implementing aggregation;
- **change subscription** — the dependency-tracked checking of §6 needs to
  know which keys changed since a monitor last evaluated.

Key syntax matches the DSL identifier rules: dot-separated identifiers like
``false_submit_rate`` or ``storage.io_latency.p95``.
"""

import math
import re

from repro.core.errors import StoreError
from repro.detect.quantiles import P2Quantile
from repro.detect.streaming import Ewma, MovingAverage, RateCounter, WindowedMean
from repro.trace.tracer import TRACER

_KEY_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*$")


class _DerivedKey:
    """A streaming aggregate fed from a source key."""

    def __init__(self, name, source, estimator, extract):
        self.name = name
        self.source = source
        self.estimator = estimator
        self._extract = extract

    def update(self, value, now):
        self.estimator.update(value)

    def update_batch(self, values, times):
        """Feed a batch of saves; default is exact sequential replay.

        Running-float estimators (moving average, EWMA, windowed mean,
        P2 quantile) are rounding-order-sensitive, so the default replays
        events one by one — state stays bit-identical to scalar saves.
        Subclasses with order-free state override this with a vector path.
        """
        update = self.update
        for value, now in zip(values, times):
            # float() mirrors the scalar save path's conversion exactly.
            update(float(value), now)

    def value(self, now):
        return self._extract(self.estimator, now)


class _DerivedWindowedMean(_DerivedKey):
    """Time-window averages need timestamps, not just values."""

    def __init__(self, name, source, window):
        super().__init__(name, source, WindowedMean(window), None)

    def update(self, value, now):
        self.estimator.observe(now, value)

    def value(self, now):
        return self.estimator.mean(now)


class _DerivedRate(_DerivedKey):
    """Rate aggregates need timestamps, not just values."""

    def __init__(self, name, source, window, predicate=None):
        super().__init__(name, source, RateCounter(window), None)
        # The default predicate (truthiness of a 0/1 event value) is
        # order-free integer math, so batches take the vector lane below.
        self._default_predicate = predicate is None
        self._predicate = predicate or (lambda v: bool(v))

    def update(self, value, now):
        self.estimator.observe(now, self._predicate(value))

    def update_batch(self, values, times):
        if self._default_predicate:
            # bool(v) == (v != 0) for numeric v (NaN is truthy either way);
            # the counter's batched observe is exact for monotone times.
            self.estimator.observe_batch(times, values)
            return
        observe = self.estimator.observe
        predicate = self._predicate
        for value, now in zip(values, times):
            observe(now, predicate(float(value)))

    def value(self, now):
        return self.estimator.rate(now)


class FeatureStore:
    """Global key/value store with derived aggregates and change tracking."""

    MAX_SUBSCRIBER_ERRORS = 100

    def __init__(self, clock=None, strict_notify=False):
        self._clock = clock if clock is not None else (lambda: 0)
        self._values = {}
        self._derived = {}      # derived key name -> _DerivedKey
        self._by_source = {}    # source key -> (derived keys, ...) tuple
        self._versions = {}     # key -> monotonically increasing int
        self._subscribers = []  # callbacks (key, value, now)
        self._valid_keys = set()  # keys that already passed _KEY_RE
        self._flush = None      # one-shot drain armed by a batched ingest
        self.save_count = 0
        self.load_count = 0
        # ``strict_notify=True`` restores the pre-containment behavior: a
        # raising subscriber aborts notification (kept so regression tests
        # can demonstrate the bug the containment fixes).
        self.strict_notify = strict_notify
        self.subscriber_error_count = 0
        self.subscriber_errors = []  # bounded: most recent contained crashes

    def _check_key(self, key):
        # Fast lane: every validated key lands in ``_valid_keys``, so the
        # per-save/per-load cost of a known key is one set lookup, not a
        # regex match.  ``in`` raises TypeError for unhashable non-strings,
        # which the except folds into the usual StoreError.
        try:
            if key in self._valid_keys:
                return
        except TypeError:
            raise StoreError("invalid feature-store key: {!r}".format(key))
        if not isinstance(key, str) or not _KEY_RE.match(key):
            raise StoreError("invalid feature-store key: {!r}".format(key))
        self._valid_keys.add(key)

    # -- batched ingest plumbing -------------------------------------------

    def defer_flush(self, callback):
        """Arm a one-shot ``callback`` that drains buffered batched saves.

        The batched device-model lane buffers per-event saves in columns;
        any store access that could observe state (save/load/version/
        snapshot/keys/contains) first runs the armed callback, so no reader
        can ever see pre-flush state.  Re-arming the same callback is a
        no-op; arming a different one drains the first immediately.
        """
        if self._flush is not None and self._flush is not callback:
            self._drain_flush()
        self._flush = callback

    def cancel_flush(self, callback):
        """Disarm ``callback`` if armed (the ingest draining on its own)."""
        if self._flush is callback:
            self._flush = None

    def _drain_flush(self):
        # Clear before running: the callback replays saves through the
        # normal (or batched) save path, which must not re-enter the drain.
        flush, self._flush = self._flush, None
        flush()

    def save_batch(self, key, values, times):
        """Batched SAVE: equivalent to ``save(key, v)`` at each time.

        ``times`` carries the events' (non-decreasing) virtual timestamps —
        the clock values the scalar saves would have observed.  With no
        tracer and no subscribers the fast lane updates raw state in O(1)
        and feeds derived keys one batch at a time; otherwise events are
        replayed sequentially so every per-event observer sees scalar
        order.  Values are expected numeric (the device-model lane only
        buffers numbers); state afterwards is bit-identical to n scalar
        saves as long as nothing read the store mid-batch — which
        :meth:`defer_flush` exists to guarantee.
        """
        count = len(values)
        if count == 0:
            return
        if len(times) != count:
            raise StoreError(
                "save_batch: {} values vs {} times".format(count, len(times)))
        try:
            unseen = key not in self._valid_keys
        except TypeError:
            raise StoreError("invalid feature-store key: {!r}".format(key))
        if unseen:
            self._check_key(key)
        if key in self._derived:
            raise StoreError(
                "key {!r} is derived (from {!r}) and cannot be saved directly"
                .format(key, self._derived[key].source)
            )
        if TRACER.active or self._subscribers:
            # Sequential replay at the recorded event times: tracing spans
            # and subscriber callbacks observe each save individually, in
            # exactly the order the scalar path would have produced.
            for value, now in zip(values, times):
                self.save_count += 1
                if TRACER.active:
                    TRACER.emit(
                        "featurestore.save", key, now,
                        args={"value": value}
                        if isinstance(value, (bool, int, float, str))
                        or value is None else None,
                    )
                self._values[key] = value
                self._bump(key, value, now)
                if isinstance(value, (int, float)):
                    fanout = self._by_source.get(key)
                    if fanout is not None:
                        numeric = float(value)
                        for derived in fanout:
                            derived.update(numeric, now)
                            self._bump(derived.name, None, now)
            return
        self.save_count += count
        self._values[key] = values[-1]
        versions = self._versions
        versions[key] = versions.get(key, 0) + count
        fanout = self._by_source.get(key)
        if fanout is not None:
            for derived in fanout:
                derived.update_batch(values, times)
                versions[derived.name] = versions.get(derived.name, 0) + count

    def save(self, key, value):
        """SAVE(key, value) — store a raw value and feed derived keys."""
        if self._flush is not None:
            self._drain_flush()
        try:
            unseen = key not in self._valid_keys
        except TypeError:
            raise StoreError("invalid feature-store key: {!r}".format(key))
        if unseen:
            self._check_key(key)
        if key in self._derived:
            raise StoreError(
                "key {!r} is derived (from {!r}) and cannot be saved directly"
                .format(key, self._derived[key].source)
            )
        now = self._clock()
        self.save_count += 1
        if TRACER.active:
            TRACER.emit(
                "featurestore.save", key, now,
                args={"value": value}
                if isinstance(value, (bool, int, float, str)) or value is None
                else None,
            )
        self._values[key] = value
        self._bump(key, value, now)
        # bool is an int subclass, so one isinstance covers the bool branch.
        if isinstance(value, (int, float)):
            fanout = self._by_source.get(key)
            if fanout is not None:
                numeric = float(value)
                bump = self._bump
                for derived in fanout:
                    derived.update(numeric, now)
                    bump(derived.name, None, now)

    def load(self, key, default=None):
        """LOAD(key) — raw value or current derived-aggregate value.

        Missing keys return ``default`` (``None`` unless given); rules treat
        a ``None`` load as "no data yet", which never violates.
        """
        if self._flush is not None:
            self._drain_flush()
        try:
            unseen = key not in self._valid_keys
        except TypeError:
            raise StoreError("invalid feature-store key: {!r}".format(key))
        if unseen:
            self._check_key(key)
        self.load_count += 1
        # Raw and derived keys are disjoint by construction; the raw branch
        # skips the clock read (only derived values are time-dependent).
        values = self._values
        if key in values:
            return values[key]
        derived = self._derived.get(key)
        if derived is not None:
            return derived.value(self._clock())
        return default

    def __contains__(self, key):
        if self._flush is not None:
            self._drain_flush()
        return key in self._values or key in self._derived

    def keys(self):
        if self._flush is not None:
            self._drain_flush()
        return sorted(set(self._values) | set(self._derived))

    def version(self, key):
        """Monotonic change counter for a key (0 if never written)."""
        if self._flush is not None:
            self._drain_flush()
        return self._versions.get(key, 0)

    def _bump(self, key, value, now):
        versions = self._versions
        versions[key] = versions.get(key, 0) + 1
        if not self._subscribers:
            return
        # Copy: a subscriber may (un)subscribe, or trigger saves that
        # re-enter _bump, while we iterate.
        for callback in list(self._subscribers):
            try:
                callback(key, value, now)
            except Exception as error:
                # The value is already written; one crashing subscriber must
                # not starve the remaining subscribers of the change.
                # Contained per callback, counted, logged (bounded), traced.
                if self.strict_notify:
                    raise
                self.subscriber_error_count += 1
                if len(self.subscriber_errors) >= self.MAX_SUBSCRIBER_ERRORS:
                    self.subscriber_errors.pop(0)
                self.subscriber_errors.append({
                    "key": key,
                    "time": now,
                    "subscriber": getattr(callback, "__qualname__",
                                          repr(callback)),
                    "error": "{}: {}".format(type(error).__name__, error),
                })
                if TRACER.active:
                    TRACER.emit("supervisor", "subscriber_crash", now,
                                args={"key": key,
                                      "error": type(error).__name__})

    def subscribe(self, callback):
        """Call ``callback(key, value, now)`` on every key change.

        Subscribing an already-subscribed callback is idempotent: the
        callback stays registered exactly once (one delivery per change),
        and any of the returned ``unsubscribe`` handles removes that single
        registration.  ``unsubscribe`` itself is idempotent.
        """
        if callback not in self._subscribers:
            self._subscribers.append(callback)

        def unsubscribe():
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    # -- derived keys -----------------------------------------------------

    def _register_derived(self, derived):
        self._check_key(derived.name)
        self._check_key(derived.source)
        if derived.name in self._derived or derived.name in self._values:
            raise StoreError("derived key {!r} already exists".format(derived.name))
        self._derived[derived.name] = derived
        # Tuples: the save-path fan-out iterates this on every numeric save,
        # and registration is rare enough that rebuild-on-append is free.
        self._by_source[derived.source] = (
            self._by_source.get(derived.source, ()) + (derived,))
        return derived.name

    def derive_moving_average(self, source, window, name=None):
        """``name`` tracks the moving average of the last ``window`` saves."""
        name = name or source + ".avg"
        estimator = MovingAverage(window)
        return self._register_derived(
            _DerivedKey(name, source, estimator, lambda e, now: e.value)
        )

    def derive_ewma(self, source, alpha, name=None):
        name = name or source + ".ewma"
        estimator = Ewma(alpha)
        return self._register_derived(
            _DerivedKey(name, source, estimator, lambda e, now: e.value)
        )

    def derive_quantile(self, source, q, name=None):
        name = name or "{}.p{:g}".format(source, q * 100)
        estimator = P2Quantile(q)
        return self._register_derived(
            _DerivedKey(name, source, estimator, lambda e, now: e.value)
        )

    def derive_time_average(self, source, window, name=None):
        """``name`` is the mean of saves within the trailing ``window`` ns."""
        name = name or source + ".tavg"
        return self._register_derived(_DerivedWindowedMean(name, source, window))

    def derive_rate(self, source, window, predicate=None, name=None):
        """``name`` is the fraction of recent saves satisfying ``predicate``.

        With the default predicate the source is expected to be saved as
        0/1 (or bool) event outcomes, e.g. ``SAVE(false_submit, 1)``.
        """
        name = name or source + ".rate"
        return self._register_derived(_DerivedRate(name, source, window, predicate))

    def snapshot(self):
        """All current raw values plus derived values (for REPORT payloads).

        NaN means "no data" throughout the rule language, so NaN raw values
        are dropped exactly like NaN derived aggregates — a REPORT payload
        is uniformly "keys with data".
        """
        if self._flush is not None:
            self._drain_flush()
        now = self._clock()
        out = {
            key: value for key, value in self._values.items()
            if not (isinstance(value, float) and math.isnan(value))
        }
        for name, derived in self._derived.items():
            value = derived.value(now)
            if isinstance(value, float) and math.isnan(value):
                continue
            out[name] = value
        return out

"""Automated guardrail synthesis from policy metadata (§3.3).

"For learned policies, many of these can be determined automatically, e.g.,
the performance metric to track can be extracted from the reward function."

A policy declares a :class:`PolicyManifest` — its reward metric, legal
output bounds, fallback, and instrumentation — and
:func:`synthesize_guardrails` expands it into the applicable P1/P2/P4/P5
guardrail specs without the developer writing any DSL.  Thresholds that
need system knowledge can be left relaxed and handed to the auto-tightener
(:mod:`repro.core.tightening`).
"""

from repro.core.properties import (
    decision_overhead,
    decision_quality,
    in_distribution,
    output_bounds,
    robustness,
)
from repro.sim.units import SECOND


class PolicyManifest:
    """Everything the synthesizer needs to know about one learned policy.

    Parameters mirror what a training pipeline knows anyway:

    - ``name`` — the instrumentation prefix (``<name>.*`` store keys);
    - ``reward_key`` / ``baseline_key`` — the metric the reward function
      optimizes and the baseline to compare against (P4); ``higher_is_better``
      orients the comparison;
    - ``slot`` / ``fallback`` — the function slot the policy occupies and
      the registered safe implementation (A2 target);
    - ``model`` — the retrain-queue model name (A3 target);
    - ``has_input_tracker`` / ``has_sensitivity_probe`` — which
      instrumentation the policy wrapper enabled (P1 / P2);
    - ``bounds_hook`` / ``bounds_rule`` — an output-bounds check site (P3).
    """

    def __init__(self, name, slot=None, fallback=None, model=None,
                 reward_key=None, baseline_key=None, higher_is_better=True,
                 quality_margin=0.0, has_input_tracker=False,
                 has_sensitivity_probe=False, sensitivity_threshold=1.0,
                 bounds_hook=None, bounds_rule=None,
                 check_interval=1 * SECOND):
        self.name = name
        self.slot = slot
        self.fallback = fallback
        self.model = model or name
        self.reward_key = reward_key
        self.baseline_key = baseline_key
        self.higher_is_better = higher_is_better
        self.quality_margin = quality_margin
        self.has_input_tracker = has_input_tracker
        self.has_sensitivity_probe = has_sensitivity_probe
        self.sensitivity_threshold = sensitivity_threshold
        self.bounds_hook = bounds_hook
        self.bounds_rule = bounds_rule
        self.check_interval = check_interval


def synthesize_guardrails(manifest):
    """Expand a manifest into guardrail DSL texts, keyed by property id."""
    specs = {}
    interval = manifest.check_interval

    if manifest.has_input_tracker:
        specs["P1"] = in_distribution(
            manifest.name, interval=interval, model=manifest.model
        )

    if manifest.has_sensitivity_probe:
        specs["P2"] = robustness(
            manifest.name,
            sensitivity_threshold=manifest.sensitivity_threshold,
            interval=interval,
            model=manifest.model,
        )

    if manifest.bounds_hook and manifest.bounds_rule:
        if not (manifest.slot and manifest.fallback):
            raise ValueError(
                "manifest {!r}: output bounds need slot and fallback for "
                "the REPLACE action".format(manifest.name)
            )
        specs["P3"] = output_bounds(
            manifest.name, manifest.bounds_hook, manifest.bounds_rule,
            manifest.slot, manifest.fallback,
        )

    if manifest.reward_key and manifest.baseline_key:
        metric, baseline = manifest.reward_key, manifest.baseline_key
        if not manifest.higher_is_better:
            # decision_quality checks metric >= baseline - margin; for
            # lower-is-better rewards, swap the operands.
            metric, baseline = baseline, metric
        specs["P4"] = decision_quality(
            manifest.name, metric, baseline,
            margin=manifest.quality_margin, interval=interval,
            fallback_slot=manifest.slot, fallback_impl=manifest.fallback,
        )

    # P5 is always applicable: the instrumentation meter is unconditional.
    specs["P5"] = decision_overhead(
        manifest.name, interval=interval,
        fallback_slot=manifest.slot, fallback_impl=manifest.fallback,
    )
    return specs


#: Which manifest fields each synthesized property derives from — the
#: provenance the autopilot attaches when it records a synthesis proposal,
#: answering "why does this guardrail exist" from policy metadata alone.
SYNTHESIS_SOURCES = {
    "P1": ("has_input_tracker", "model"),
    "P2": ("has_sensitivity_probe", "sensitivity_threshold", "model"),
    "P3": ("bounds_hook", "bounds_rule", "slot", "fallback"),
    "P4": ("reward_key", "baseline_key", "higher_is_better",
           "quality_margin", "slot", "fallback"),
    "P5": ("name", "slot", "fallback"),
}


def synthesis_provenance(manifest, property_id):
    """The manifest fields (name -> value) a synthesized spec derives from."""
    return {field: getattr(manifest, field)
            for field in SYNTHESIS_SOURCES[property_id]}

"""Static verification of compiled guardrails.

The paper compiles guardrails into monitors that run *inside the kernel* —
which is only acceptable if their cost is provably bounded before loading,
exactly the role the eBPF verifier plays.  Our verifier enforces:

- per-rule and total instruction budgets (rule trees are loop-free, so
  ``static_cost`` is an exact worst case);
- a cap on the number of triggers, rules, and actions;
- a minimum TIMER interval, bounding the steady-state check *rate*;
- a stricter inline budget for FUNCTION-triggered rules, whose rate is
  workload-controlled and therefore unbounded;
- a bounded estimated overhead rate (ops/second) for TIMER-driven checks.

Rejection raises :class:`VerifierError` with the failed constraint spelled
out, and the monitor is never loaded.
"""

from repro.core.errors import VerifierError
from repro.core.spec import ast as A


class VerifierConfig:
    """Budgets; defaults chosen to comfortably admit the paper's examples."""

    def __init__(self, max_rule_cost=512, max_total_cost=4096,
                 max_inline_rule_cost=64, max_triggers=8, max_rules=16,
                 max_actions=8, min_timer_interval=1_000_000,
                 max_ops_per_second=1_000_000):
        self.max_rule_cost = max_rule_cost
        self.max_total_cost = max_total_cost
        self.max_inline_rule_cost = max_inline_rule_cost
        self.max_triggers = max_triggers
        self.max_rules = max_rules
        self.max_actions = max_actions
        self.min_timer_interval = min_timer_interval  # ns; default 1ms
        self.max_ops_per_second = max_ops_per_second


class VerificationResult:
    """What the verifier proved about an admitted guardrail."""

    def __init__(self, name, rule_costs, total_cost, estimated_ops_per_second):
        self.name = name
        self.rule_costs = list(rule_costs)
        self.total_cost = total_cost
        self.estimated_ops_per_second = estimated_ops_per_second

    def __repr__(self):
        return "VerificationResult({!r}, total_cost={}, ops/s<={:.0f})".format(
            self.name, self.total_cost, self.estimated_ops_per_second
        )


def verify(spec, rule_costs, timer_intervals, has_function_trigger,
           config=None):
    """Check one guardrail against the budgets; raise or return a result.

    ``rule_costs`` are the static costs of each compiled rule,
    ``timer_intervals`` the intervals (ns) of the TIMER triggers, and
    ``has_function_trigger`` whether any FUNCTION trigger is present.
    """
    config = config if config is not None else VerifierConfig()
    _check_counts(spec, config)

    for rule, cost in zip(spec.rules, rule_costs):
        if cost > config.max_rule_cost:
            raise VerifierError(
                "guardrail {!r}: rule {!r} costs {} ops, budget is {}".format(
                    spec.name, rule.to_source(), cost, config.max_rule_cost
                )
            )
        if has_function_trigger and cost > config.max_inline_rule_cost:
            raise VerifierError(
                "guardrail {!r}: rule {!r} costs {} ops, too expensive for a "
                "FUNCTION trigger (inline budget {})".format(
                    spec.name, rule.to_source(), cost, config.max_inline_rule_cost
                )
            )

    total_cost = sum(rule_costs)
    if total_cost > config.max_total_cost:
        raise VerifierError(
            "guardrail {!r}: total rule cost {} exceeds budget {}".format(
                spec.name, total_cost, config.max_total_cost
            )
        )

    ops_per_second = 0.0
    for interval in timer_intervals:
        if interval < config.min_timer_interval:
            raise VerifierError(
                "guardrail {!r}: TIMER interval {} ns is below the minimum {} ns"
                .format(spec.name, interval, config.min_timer_interval)
            )
        ops_per_second += total_cost * (1e9 / interval)
    if ops_per_second > config.max_ops_per_second:
        raise VerifierError(
            "guardrail {!r}: estimated {:.0f} ops/s exceeds the budget {}".format(
                spec.name, ops_per_second, config.max_ops_per_second
            )
        )

    _check_actions(spec, config)
    return VerificationResult(spec.name, rule_costs, total_cost, ops_per_second)


def _check_counts(spec, config):
    if len(spec.triggers) > config.max_triggers:
        raise VerifierError(
            "guardrail {!r}: {} triggers, max is {}".format(
                spec.name, len(spec.triggers), config.max_triggers
            )
        )
    if len(spec.rules) > config.max_rules:
        raise VerifierError(
            "guardrail {!r}: {} rules, max is {}".format(
                spec.name, len(spec.rules), config.max_rules
            )
        )
    if len(spec.actions) > config.max_actions:
        raise VerifierError(
            "guardrail {!r}: {} actions, max is {}".format(
                spec.name, len(spec.actions), config.max_actions
            )
        )


def _check_actions(spec, config):
    # Action arguments must be constant or bounded expressions — they run on
    # the violation path and must also have bounded cost.
    from repro.core.expr import static_cost

    for action in spec.actions:
        if isinstance(action, A.SaveSpec):
            cost = static_cost(action.expression)
        elif isinstance(action, A.ReportSpec):
            cost = sum(static_cost(arg) for arg in action.args)
        elif isinstance(action, A.RetrainSpec) and action.input_expr is not None:
            cost = static_cost(action.input_expr)
        elif isinstance(action, A.DeprioritizeSpec):
            cost = sum(static_cost(p) for p in action.priorities)
        else:
            cost = 0
        if cost > config.max_rule_cost:
            raise VerifierError(
                "guardrail {!r}: action {} argument cost {} exceeds budget {}"
                .format(spec.name, action.kind, cost, config.max_rule_cost)
            )

"""Guardrails for the OS — the paper's primary contribution.

The pipeline mirrors §3–§4 of the paper:

1. Write a guardrail spec in the Listing 1 DSL (or build one
   programmatically, or expand a P1–P6 property template).
2. :class:`~repro.core.compiler.GuardrailCompiler` parses it, runs the
   eBPF-style static verifier, and emits a
   :class:`~repro.core.monitor.GuardrailMonitor`.
3. A :class:`~repro.core.registry.GuardrailManager` loads monitors into a
   running (simulated) kernel; triggers fire, rules evaluate against the
   global feature store, and violated rules dispatch REPORT / REPLACE /
   RETRAIN / DEPRIORITIZE actions.
"""

from repro.core.actions import (
    Action,
    ActionContext,
    DeprioritizeAction,
    ReplaceAction,
    ReportAction,
    RetrainAction,
)
from repro.core.compiler import CompiledGuardrail, GuardrailCompiler
from repro.core.errors import (
    CompileError,
    GuardrailError,
    ParseError,
    SpecError,
    VerifierError,
)
from repro.core.featurestore import FeatureStore
from repro.core.monitor import GuardrailMonitor, Violation
from repro.core.registry import GuardrailManager
from repro.core.spec import GuardrailSpec, parse_guardrail, parse_guardrails
from repro.core.triggers import FunctionTrigger, TimerTrigger

__all__ = [
    "Action",
    "ActionContext",
    "DeprioritizeAction",
    "ReplaceAction",
    "ReportAction",
    "RetrainAction",
    "CompiledGuardrail",
    "GuardrailCompiler",
    "CompileError",
    "GuardrailError",
    "ParseError",
    "SpecError",
    "VerifierError",
    "FeatureStore",
    "GuardrailMonitor",
    "Violation",
    "GuardrailManager",
    "GuardrailSpec",
    "parse_guardrail",
    "parse_guardrails",
    "FunctionTrigger",
    "TimerTrigger",
]

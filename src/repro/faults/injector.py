"""Deterministic fault injection against a live monitor host.

The injector takes a :class:`~repro.faults.plan.FaultPlan` and arms it
against a host: policy faults wrap the targeted function slot (so whatever
is bound there — learned policy, heuristic, another wrapper — misbehaves on
cue), and feature-store faults wrap ``store.load`` so chosen keys serve
stale or corrupt values inside their windows.

Injection is reproducible: windows are virtual-time, probabilistic faults
draw from named RNG streams derived from the *plan* seed (independent of
the workload seed), and every injection is counted, logged (bounded), and
emitted as a ``fault`` trace event.

Composition with supervision: install the injector **before** building a
:class:`~repro.faults.supervisor.PolicySupervisor` on the same slot, so the
supervisor wraps the faulted policy (crashes are injected inside, contained
outside).  The heuristic fallback the supervisor swaps in is a different
implementation and is therefore never faulted.
"""

from repro.core.errors import FaultError
from repro.faults.plan import InjectedFault
from repro.sim.rng import RngStreams
from repro.trace.tracer import TRACER


class _FaultingPolicy:
    """Wraps one function-slot implementation with its policy faults."""

    __slots__ = ("injector", "inner", "specs")

    def __init__(self, injector, inner, specs):
        self.injector = injector
        self.inner = inner
        self.specs = specs

    def __call__(self, *args, **kwargs):
        injector = self.injector
        now = injector.host.engine.now
        nan_spec = stall_spec = None
        for spec in self.specs:
            if not injector._fires(spec, now):
                continue
            if spec.kind == "raise":
                injector._record(spec, now)
                raise InjectedFault(
                    "injected crash in {} at t={}ns".format(spec.target, now))
            if spec.kind == "nan" and nan_spec is None:
                nan_spec = spec
            elif spec.kind == "stall" and stall_spec is None:
                stall_spec = spec
        if nan_spec is not None:
            injector._record(nan_spec, now)
            return float("nan")
        result = self.inner(*args, **kwargs)
        if stall_spec is not None and hasattr(result, "inference_ns"):
            injector._record(stall_spec, now)
            result.inference_ns = (result.inference_ns or 0) + stall_spec.latency_ns
        return result


class FaultInjector:
    """Arms a fault plan against one host; see the module docstring."""

    MAX_LOG = 10_000

    def __init__(self, host, plan):
        self.host = host
        self.plan = plan
        self.rng = RngStreams(plan.seed)
        self.injected_count = 0
        self.injected_by_kind = {}
        self.injected = []  # bounded log of {"time", "kind", "target"}
        self.injected_dropped = 0
        self._counts = [0] * len(plan)
        self._installed = False
        self._frozen = {}  # store key -> value frozen at window start

    def install(self):
        """Wrap every targeted slot and key; returns self for chaining."""
        if self._installed:
            raise FaultError("fault plan is already installed")
        self._installed = True
        for slot_name, specs in sorted(self.plan.policy_faults().items()):
            slot = self.host.functions.slot(slot_name)  # raises on unknown
            slot.current = _FaultingPolicy(self, slot.current, specs)
        store_faults = self.plan.store_faults()
        if store_faults:
            self._wrap_store(store_faults)
        return self

    # -- shared helpers ----------------------------------------------------

    def _fires(self, spec, now):
        if not spec.active(now):
            return False
        if spec.count is not None and self._counts[spec.index] >= spec.count:
            return False
        if spec.probability < 1.0:
            stream = self.rng.get("fault.{}".format(spec.index))
            if stream.random() >= spec.probability:
                return False
        return True

    def _record(self, spec, now):
        self._counts[spec.index] += 1
        self.injected_count += 1
        self.injected_by_kind[spec.kind] = (
            self.injected_by_kind.get(spec.kind, 0) + 1)
        if len(self.injected) < self.MAX_LOG:
            self.injected.append(
                {"time": now, "kind": spec.kind, "target": spec.target})
        else:
            self.injected_dropped += 1
        if TRACER.active:
            TRACER.emit("fault", spec.kind, now,
                        args={"target": spec.target})

    # -- feature-store faults ----------------------------------------------

    def _wrap_store(self, store_faults):
        store = self.host.store
        inner_load = store.load
        engine = self.host.engine

        for key, specs in sorted(store_faults.items()):
            for spec in specs:
                if spec.kind != "stale":
                    continue
                # Freeze the value the key has when the window opens; loads
                # inside the window then serve that snapshot.
                def freeze(key=key):
                    self._frozen[key] = inner_load(key)

                if spec.start_ns <= engine.now:
                    freeze()
                else:
                    engine.schedule_at(spec.start_ns, freeze)

        def faulted_load(key, default=None):
            specs = store_faults.get(key)
            if specs:
                now = engine.now
                for spec in specs:
                    if self._fires(spec, now):
                        self._record(spec, now)
                        store.load_count += 1
                        if spec.kind == "corrupt":
                            return float("nan")
                        return self._frozen.get(key)
            return inner_load(key, default)

        store.load = faulted_load

    # -- accounting --------------------------------------------------------

    def stats(self):
        return {
            "injected": self.injected_count,
            "by_kind": dict(sorted(self.injected_by_kind.items())),
            "per_fault": {
                "{}@{}".format(spec.kind, spec.target): self._counts[i]
                for i, spec in enumerate(self.plan)
            },
            "log_dropped": self.injected_dropped,
        }

    def __repr__(self):
        return "FaultInjector({} fault(s), injected={})".format(
            len(self.plan), self.injected_count)

"""repro.faults — deterministic fault injection and crash-only supervision.

Three pieces:

- :mod:`repro.faults.plan` — declarative fault plans (JSON documents or
  ``--fault`` CLI flags) naming what to break, where, and in which
  virtual-time window;
- :mod:`repro.faults.injector` — arms a plan against a live host: policies
  raise / return garbage / stall, feature-store keys serve stale or
  corrupt reads;
- :mod:`repro.faults.supervisor` — circuit breakers that contain the
  damage: per-guardrail monitor supervision (crashing rules and actions
  are counted, the monitor is disarmed after K consecutive crashes and
  re-armed with exponential virtual-time backoff) and function-slot
  supervision that falls back to the heuristic policy through the
  existing A2 REPLACE action path.

``grctl faults`` drives all of it from the command line; ``docs/faults.md``
documents the plan format and breaker semantics.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    parse_fault_flag,
)
from repro.faults.supervisor import (
    BreakerConfig,
    CircuitBreaker,
    MonitorSupervisor,
    PolicySupervisor,
    make_pick_validator,
)

__all__ = [
    "FAULT_KINDS",
    "BreakerConfig",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "MonitorSupervisor",
    "PolicySupervisor",
    "make_pick_validator",
    "parse_fault_flag",
]

"""Crash-only supervision: circuit breakers over monitors and policy slots.

The guardrail host must survive its own components misbehaving — a rule
program that divides by zero, an action handler that KeyErrors, a learned
policy that raises mid-inference.  Supervision here follows the classic
circuit-breaker state machine, run entirely in *virtual* time so every
trip and re-arm is reproducible:

- **closed** — failures are contained and counted; ``K`` *consecutive*
  failures trip the breaker;
- **open** — the supervised component is taken out of the path (monitor
  disarmed, policy slot REPLACEd with its heuristic fallback); a re-arm is
  scheduled ``backoff`` virtual ns ahead;
- **half_open** — the component is probed again; one success closes the
  breaker and resets the backoff, one failure re-opens it with the backoff
  doubled (capped at ``max_backoff_ns``).

Every contained failure and every state transition is counted, kept in a
bounded suppressed-fault log, reported through the host's
:class:`~repro.core.host.ViolationReporter`, and emitted as a
``supervisor`` trace event — degraded mode is accounted for, never silent.
"""

from repro.core.actions import ActionContext, ReplaceAction
from repro.sim.units import SECOND
from repro.trace.tracer import TRACER

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class BreakerConfig:
    """Tunables shared by monitor and policy breakers."""

    __slots__ = ("crash_threshold", "base_backoff_ns", "backoff_factor",
                 "max_backoff_ns")

    def __init__(self, crash_threshold=3, base_backoff_ns=1 * SECOND,
                 backoff_factor=2.0, max_backoff_ns=60 * SECOND):
        if crash_threshold < 1:
            raise ValueError("crash_threshold must be >= 1")
        if base_backoff_ns <= 0:
            raise ValueError("base_backoff_ns must be positive")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        self.crash_threshold = int(crash_threshold)
        self.base_backoff_ns = int(base_backoff_ns)
        self.backoff_factor = float(backoff_factor)
        self.max_backoff_ns = int(max_backoff_ns)


class CircuitBreaker:
    """One per-component breaker; all timing in virtual nanoseconds."""

    __slots__ = ("name", "config", "state", "consecutive_failures",
                 "failure_count", "trip_count", "backoff_ns", "reopen_at",
                 "transitions")

    def __init__(self, name, config=None):
        self.name = name
        self.config = config if config is not None else BreakerConfig()
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        self.failure_count = 0
        self.trip_count = 0
        self.backoff_ns = self.config.base_backoff_ns
        self.reopen_at = None
        self.transitions = []  # [{"time", "from", "to"}, ...]

    def _move(self, now, to):
        self.transitions.append(
            {"time": now, "from": self.state, "to": to})
        self.state = to

    def _trip(self, now):
        self.trip_count += 1
        self.reopen_at = now + self.backoff_ns
        self._move(now, STATE_OPEN)

    def record_failure(self, now):
        """Count one failure; returns True when this failure trips the breaker."""
        self.failure_count += 1
        self.consecutive_failures += 1
        if self.state == STATE_HALF_OPEN:
            # The probe failed: re-open with the backoff doubled.
            self.backoff_ns = min(
                int(self.backoff_ns * self.config.backoff_factor),
                self.config.max_backoff_ns)
            self._trip(now)
            return True
        if (self.state == STATE_CLOSED
                and self.consecutive_failures >= self.config.crash_threshold):
            self._trip(now)
            return True
        return False

    def rearm(self, now):
        """open -> half_open (the scheduled probe point)."""
        if self.state == STATE_OPEN:
            self.reopen_at = None
            self._move(now, STATE_HALF_OPEN)

    def record_success(self, now):
        """Reset the failure streak; returns True when this closes the breaker."""
        self.consecutive_failures = 0
        if self.state == STATE_HALF_OPEN:
            self.backoff_ns = self.config.base_backoff_ns
            self._move(now, STATE_CLOSED)
            return True
        return False

    def snapshot(self):
        return {
            "state": self.state,
            "failures": self.failure_count,
            "consecutive": self.consecutive_failures,
            "trips": self.trip_count,
            "backoff_ns": self.backoff_ns,
            "reopen_at": self.reopen_at,
            "transitions": list(self.transitions),
        }

    def __repr__(self):
        return "CircuitBreaker({!r}, {}, failures={}, trips={})".format(
            self.name, self.state, self.failure_count, self.trip_count)


class MonitorSupervisor:
    """Isolates every monitor check and action dispatch on one host.

    The monitor runtime reports contained crashes here; after ``K``
    consecutive crashes of one guardrail its breaker trips, the monitor is
    disarmed, and a re-arm is scheduled with exponential virtual-time
    backoff.  ``contain=False`` restores the pre-supervision behavior
    (crashes propagate and abort the run) — kept as an escape hatch so the
    regression tests can demonstrate the failure mode the supervisor fixes.
    """

    MAX_SUPPRESSED = 1_000

    def __init__(self, host, config=None, contain=True):
        self.host = host
        self.config = config if config is not None else BreakerConfig()
        self.contain = contain
        self.breakers = {}
        self.rule_crash_count = 0
        self.action_crash_count = 0
        self.suppressed = []
        self.suppressed_dropped = 0

    def breaker(self, name):
        breaker = self.breakers.get(name)
        if breaker is None:
            breaker = self.breakers[name] = CircuitBreaker(name, self.config)
        return breaker

    def _suppress(self, kind, name, error, now):
        entry = {"kind": kind, "guardrail": name, "time": now,
                 "error": "{}: {}".format(type(error).__name__, error)}
        if len(self.suppressed) < self.MAX_SUPPRESSED:
            self.suppressed.append(entry)
        else:
            self.suppressed_dropped += 1
        self.host.reporter.note(kind.upper(), name, now,
                                detail=entry["error"])
        if TRACER.active:
            TRACER.emit("supervisor", kind, now, guardrail=name,
                        args={"error": type(error).__name__})

    def record_rule_crash(self, monitor, error, now):
        """A rule program raised during a check."""
        if not self.contain:
            raise error
        self.rule_crash_count += 1
        self._suppress("rule_crash", monitor.name, error, now)
        if self.breaker(monitor.name).record_failure(now):
            self._open(monitor, now)

    def record_action_crash(self, monitor, error, now):
        """An action handler raised a non-GuardrailError during dispatch."""
        if not self.contain:
            raise error
        self.action_crash_count += 1
        self._suppress("action_crash", monitor.name, error, now)
        if self.breaker(monitor.name).record_failure(now):
            self._open(monitor, now)

    def record_check_success(self, name, now):
        """A crash-free check completed; closes a half-open breaker."""
        breaker = self.breakers.get(name)
        if breaker is not None and breaker.record_success(now):
            self.host.reporter.note("BREAKER_CLOSE", name, now)
            if TRACER.active:
                TRACER.emit("supervisor", "breaker_close", now, guardrail=name)

    def _open(self, monitor, now):
        breaker = self.breakers[monitor.name]
        monitor.disarm()
        self.host.reporter.note(
            "BREAKER_OPEN", monitor.name, now,
            detail="rearm at t={}ns (backoff {}ns)".format(
                breaker.reopen_at, breaker.backoff_ns))
        if TRACER.active:
            TRACER.emit("supervisor", "breaker_open", now,
                        guardrail=monitor.name,
                        args={"reopen_at": breaker.reopen_at})
        self.host.engine.schedule_at(breaker.reopen_at, self._rearm, monitor)

    def _rearm(self, monitor):
        now = self.host.engine.now
        breaker = self.breakers[monitor.name]
        breaker.rearm(now)
        self.host.reporter.note("BREAKER_REARM", monitor.name, now)
        if TRACER.active:
            TRACER.emit("supervisor", "breaker_rearm", now,
                        guardrail=monitor.name)
        monitor.arm()

    def stats(self):
        return {
            "rule_crashes": self.rule_crash_count,
            "action_crashes": self.action_crash_count,
            "suppressed": len(self.suppressed),
            "suppressed_dropped": self.suppressed_dropped,
            "breakers": {name: b.snapshot()
                         for name, b in sorted(self.breakers.items())},
        }


def make_pick_validator(device_count):
    """Output validator for replica-pick slots: sane index, finite latency."""
    def validate(decision):
        index = getattr(decision, "index", None)
        if (not isinstance(index, int) or isinstance(index, bool)
                or not 0 <= index < device_count):
            return "bad replica index {!r}".format(index)
        inference_ns = getattr(decision, "inference_ns", 0)
        if inference_ns != inference_ns or inference_ns < 0:  # NaN or negative
            return "bad inference_ns {!r}".format(inference_ns)
        return None

    return validate


class PolicySupervisor:
    """Wraps a function slot so a crashing policy cannot take the host down.

    Per call: an exception (or, with a ``validator``, a garbage return
    value) is contained and the registered heuristic fallback serves the
    call instead.  After ``K`` consecutive failures the breaker trips and
    the slot is rebound to the fallback through the **existing A2 REPLACE
    action path** (same reporter note, same swap accounting a guardrail's
    own ``REPLACE(old, new)`` would produce).  A re-arm is scheduled with
    exponential virtual-time backoff; the half-open probe routes one call
    back through the policy — success closes the breaker, failure re-opens
    it with the backoff doubled.

    ``slow_call_ns`` optionally treats a decision whose ``inference_ns``
    exceeds the ceiling as a failure (the containment story for ``stall``
    faults): the stalled result is still returned, but enough consecutive
    slow calls REPLACE the policy with the cheap heuristic.
    """

    MAX_SUPPRESSED = 1_000

    def __init__(self, host, slot_name, fallback_name, config=None,
                 validator=None, slow_call_ns=None):
        self.host = host
        self.slot_name = slot_name
        self.fallback_name = fallback_name
        self._slot = host.functions.slot(slot_name)
        self._fallback = host.functions.resolve_implementation(fallback_name)
        self.inner = self._slot.current
        self.validator = validator
        self.slow_call_ns = slow_call_ns
        self.breaker = CircuitBreaker(slot_name, config)
        self.crash_count = 0
        self.invalid_output_count = 0
        self.slow_call_count = 0
        self.fallback_call_count = 0
        self.replace_count = 0
        self.suppressed = []
        self.suppressed_dropped = 0
        self._slot.current = self

    # -- the supervised call path -----------------------------------------

    def __call__(self, *args, **kwargs):
        now = self.host.engine.now
        try:
            result = self.inner(*args, **kwargs)
        except Exception as error:
            self.crash_count += 1
            self._failed("policy_crash", error, now)
            self.fallback_call_count += 1
            return self._fallback(*args, **kwargs)
        if self.validator is not None:
            problem = self.validator(result)
            if problem is not None:
                self.invalid_output_count += 1
                self._failed("policy_garbage", ValueError(problem), now)
                self.fallback_call_count += 1
                return self._fallback(*args, **kwargs)
        if (self.slow_call_ns is not None
                and getattr(result, "inference_ns", 0) > self.slow_call_ns):
            self.slow_call_count += 1
            self._failed("policy_stall", RuntimeError(
                "inference_ns {} > ceiling {}".format(
                    result.inference_ns, self.slow_call_ns)), now)
            return result  # slow but valid: still served
        if self.breaker.state != STATE_CLOSED or self.breaker.consecutive_failures:
            if self.breaker.record_success(now):
                self.host.reporter.note("BREAKER_CLOSE", self.slot_name, now)
                if TRACER.active:
                    TRACER.emit("supervisor", "breaker_close", now,
                                args={"slot": self.slot_name})
        return result

    # -- failure bookkeeping ----------------------------------------------

    def _failed(self, kind, error, now):
        entry = {"kind": kind, "slot": self.slot_name, "time": now,
                 "error": "{}: {}".format(type(error).__name__, error)}
        if len(self.suppressed) < self.MAX_SUPPRESSED:
            self.suppressed.append(entry)
        else:
            self.suppressed_dropped += 1
        self.host.reporter.note(kind.upper(), self.slot_name, now,
                                detail=entry["error"])
        if TRACER.active:
            TRACER.emit("supervisor", kind, now,
                        args={"slot": self.slot_name,
                              "error": type(error).__name__})
        if self.breaker.record_failure(now):
            self._engage_fallback(now)

    def _engage_fallback(self, now):
        """Trip: swap the slot to the heuristic via the A2 REPLACE path."""
        self.replace_count += 1
        action = ReplaceAction(self.slot_name, self.fallback_name)
        action.execute(ActionContext(
            self.host, "supervisor:" + self.slot_name, "circuit_breaker",
            now, {}))
        self.host.reporter.note(
            "BREAKER_OPEN", self.slot_name, now,
            detail="rearm at t={}ns (backoff {}ns)".format(
                self.breaker.reopen_at, self.breaker.backoff_ns))
        if TRACER.active:
            TRACER.emit("supervisor", "breaker_open", now,
                        args={"slot": self.slot_name,
                              "reopen_at": self.breaker.reopen_at})
        self.host.engine.schedule_at(self.breaker.reopen_at, self._rearm)

    def _rearm(self):
        now = self.host.engine.now
        self.breaker.rearm(now)
        # Probe: route calls back through the supervised policy chain.
        self._slot.current = self
        self.host.reporter.note("BREAKER_REARM", self.slot_name, now)
        if TRACER.active:
            TRACER.emit("supervisor", "breaker_rearm", now,
                        args={"slot": self.slot_name})

    def stats(self):
        return {
            "slot": self.slot_name,
            "crashes": self.crash_count,
            "invalid_outputs": self.invalid_output_count,
            "slow_calls": self.slow_call_count,
            "fallback_calls": self.fallback_call_count,
            "replaces": self.replace_count,
            "breaker": self.breaker.snapshot(),
        }

    def __repr__(self):
        return "PolicySupervisor({!r}, {}, crashes={})".format(
            self.slot_name, self.breaker.state, self.crash_count)

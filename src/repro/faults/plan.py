"""Declarative fault plans: what to break, where, and when.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries, each
describing one injectable fault against either a policy function slot or a
feature-store key, active inside a virtual-time window.  Plans come from
JSON documents (``--plan faults.json``) or from repeatable CLI flags
(``--fault raise@storage.pick_device:start=6,stop=9``); both forms produce
identical specs, and a plan plus a seed fully determines every injection —
fault runs are as reproducible as clean ones.

Injected policy crashes raise :class:`InjectedFault`, which is deliberately
**not** a :class:`~repro.core.errors.GuardrailError`: the whole point of the
crash-only work is that the enforcement layer survives *arbitrary*
exceptions, not just its own typed ones.
"""

import json

from repro.core.errors import FaultError
from repro.sim.units import SECOND, us

#: The closed set of injectable fault kinds (``grctl faults --list``).
FAULT_KINDS = {
    "raise": "target policy slot raises InjectedFault mid-inference",
    "nan": "target policy slot returns NaN garbage instead of a decision",
    "stall": "target policy slot stalls: adds latency_us to every decision",
    "stale": "feature-store loads of the target key serve the value frozen "
             "at the window start",
    "corrupt": "feature-store loads of the target key serve NaN",
}

#: Kinds that target a function slot (policy) vs. a feature-store key.
POLICY_KINDS = ("raise", "nan", "stall")
STORE_KINDS = ("stale", "corrupt")


class InjectedFault(RuntimeError):
    """The exception a ``raise`` fault throws from inside a policy."""


class FaultSpec:
    """One injectable fault.

    ``start_ns``/``stop_ns`` bound the active window in virtual time
    (``stop_ns=None`` means "until the run ends"); ``probability`` gates
    each opportunity through a seeded RNG stream; ``count`` caps the total
    number of injections; ``latency_ns`` is the added decision latency for
    ``stall`` faults.
    """

    __slots__ = ("kind", "target", "start_ns", "stop_ns", "probability",
                 "count", "latency_ns", "index")

    def __init__(self, kind, target, start_s=0.0, stop_s=None,
                 probability=1.0, count=None, latency_us=0.0):
        if kind not in FAULT_KINDS:
            raise FaultError(
                "unknown fault kind {!r}; known: {}".format(
                    kind, ", ".join(sorted(FAULT_KINDS))))
        if not target or not isinstance(target, str):
            raise FaultError("fault target must be a non-empty string")
        if not 0.0 < probability <= 1.0:
            raise FaultError(
                "fault probability must be in (0, 1], got {}".format(
                    probability))
        if count is not None and count < 1:
            raise FaultError("fault count must be >= 1, got {}".format(count))
        if latency_us < 0:
            raise FaultError("fault latency must be >= 0")
        if kind == "stall" and latency_us == 0:
            raise FaultError("stall faults need latency_us > 0")
        self.kind = kind
        self.target = target
        self.start_ns = int(round(start_s * SECOND))
        self.stop_ns = None if stop_s is None else int(round(stop_s * SECOND))
        if self.stop_ns is not None and self.stop_ns <= self.start_ns:
            raise FaultError(
                "fault window is empty: start={}s stop={}s".format(
                    start_s, stop_s))
        self.probability = float(probability)
        self.count = None if count is None else int(count)
        self.latency_ns = us(latency_us)
        self.index = 0  # position in the owning plan; set by FaultPlan

    def active(self, now):
        """Whether ``now`` falls inside this fault's window."""
        if now < self.start_ns:
            return False
        return self.stop_ns is None or now < self.stop_ns

    def to_dict(self):
        out = {"kind": self.kind, "target": self.target,
               "start_s": self.start_ns / SECOND}
        if self.stop_ns is not None:
            out["stop_s"] = self.stop_ns / SECOND
        if self.probability != 1.0:
            out["probability"] = self.probability
        if self.count is not None:
            out["count"] = self.count
        if self.latency_ns:
            out["latency_us"] = self.latency_ns / 1000
        return out

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise FaultError("fault entry must be an object, got {!r}".format(
                data))
        unknown = set(data) - {"kind", "target", "start_s", "stop_s",
                               "probability", "count", "latency_us"}
        if unknown:
            raise FaultError("unknown fault field(s): {}".format(
                ", ".join(sorted(unknown))))
        try:
            return cls(
                data.get("kind"), data.get("target"),
                start_s=float(data.get("start_s", 0.0)),
                stop_s=(None if data.get("stop_s") is None
                        else float(data["stop_s"])),
                probability=float(data.get("probability", 1.0)),
                count=data.get("count"),
                latency_us=float(data.get("latency_us", 0.0)),
            )
        except (TypeError, ValueError) as exc:
            raise FaultError("bad fault entry {!r}: {}".format(data, exc))

    def __repr__(self):
        window = "[{}s, {})".format(
            self.start_ns / SECOND,
            "..." if self.stop_ns is None else "{}s".format(
                self.stop_ns / SECOND))
        return "FaultSpec({}@{}, {})".format(self.kind, self.target, window)


#: ``--fault`` option keys -> FaultSpec constructor keyword + coercion.
_FLAG_KEYS = {
    "start": ("start_s", float),
    "stop": ("stop_s", float),
    "p": ("probability", float),
    "count": ("count", int),
    "latency_us": ("latency_us", float),
}


def parse_fault_flag(text):
    """Parse one ``--fault`` value: ``KIND@TARGET[:key=value,...]``.

    Keys: ``start``/``stop`` (virtual seconds), ``p`` (probability),
    ``count`` (max injections), ``latency_us`` (stall latency).
    """
    head, _, options = text.partition(":")
    kind, sep, target = head.partition("@")
    if not sep:
        raise FaultError(
            "bad --fault {!r}: expected KIND@TARGET[:key=value,...]".format(
                text))
    kwargs = {}
    for part in options.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep or key.strip() not in _FLAG_KEYS:
            raise FaultError(
                "bad --fault option {!r}; known keys: {}".format(
                    part, ", ".join(sorted(_FLAG_KEYS))))
        name, coerce = _FLAG_KEYS[key.strip()]
        try:
            kwargs[name] = coerce(value)
        except ValueError:
            raise FaultError("bad --fault option value {!r}".format(part))
    return FaultSpec(kind.strip(), target.strip(), **kwargs)


class FaultPlan:
    """An ordered, seeded collection of fault specs."""

    def __init__(self, faults=(), seed=0):
        self.faults = list(faults)
        self.seed = int(seed)
        for index, spec in enumerate(self.faults):
            spec.index = index

    def __len__(self):
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def policy_faults(self):
        """Specs targeting function slots, grouped: ``{slot: [spec, ...]}``."""
        groups = {}
        for spec in self.faults:
            if spec.kind in POLICY_KINDS:
                groups.setdefault(spec.target, []).append(spec)
        return groups

    def store_faults(self):
        """Specs targeting store keys, grouped: ``{key: [spec, ...]}``."""
        groups = {}
        for spec in self.faults:
            if spec.kind in STORE_KINDS:
                groups.setdefault(spec.target, []).append(spec)
        return groups

    def to_dict(self):
        return {"seed": self.seed,
                "faults": [spec.to_dict() for spec in self.faults]}

    def to_json(self):
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise FaultError("fault plan must be an object")
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise FaultError("unknown fault-plan field(s): {}".format(
                ", ".join(sorted(unknown))))
        entries = data.get("faults", [])
        if not isinstance(entries, list):
            raise FaultError("fault plan 'faults' must be a list")
        return cls([FaultSpec.from_dict(e) for e in entries],
                   seed=data.get("seed", 0))

    @classmethod
    def from_json(cls, text):
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultError("fault plan is not valid JSON: {}".format(exc))
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path):
        with open(path) as handle:
            return cls.from_json(handle.read())

    @classmethod
    def from_flags(cls, flags, seed=0):
        """Build a plan from repeated ``--fault`` flag values."""
        return cls([parse_fault_flag(flag) for flag in flags], seed=seed)

    def __repr__(self):
        return "FaultPlan({} fault(s), seed={})".format(
            len(self.faults), self.seed)

"""Fleet-scale closed loop for guardrail maintenance (§3.3).

``repro.autopilot`` turns the paper's maintenance promise into a running
loop: mine steady-state fleet behavior from a results store, propose
tightened thresholds and synthesized property metrics as versioned
guardrail specs with machine-readable provenance, and deploy each
proposal through the staged-rollout control plane — so an over-tight
proposal trips its own health gates, rolls back whole-cohort, and the
loop backs off instead of re-proposing the same spec.
"""

from repro.autopilot.loop import AutopilotError, run_autopilot
from repro.autopilot.propose import (
    Proposal,
    exact_quantile,
    mine_false_submit_samples,
    propose_synthesis,
    propose_tightening,
    storage_policy_manifest,
)

__all__ = [
    "AutopilotError",
    "Proposal",
    "exact_quantile",
    "mine_false_submit_samples",
    "propose_synthesis",
    "propose_tightening",
    "run_autopilot",
    "storage_policy_manifest",
]

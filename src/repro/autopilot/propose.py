"""Proposal mining: from stored fleet behavior to versioned specs.

Two proposal kinds, mirroring §3.3's two maintenance mechanisms:

- ``tighten`` — mine the per-``(round, host)`` false-submit fraction from
  a results store's digest history (the same rows ``service.query``
  aggregates), take an exact quantile of the observed distribution, and
  propose a threshold at ``quantile * margin`` — the fleet-scale analogue
  of :class:`repro.core.tightening.AutoTightener`'s envelope, but computed
  from mergeable digests instead of a live feature store, and rounded to
  two significant figures the same way gate calibration rounds its
  recommendations.  A ``max_step`` cap bounds how much any one proposal
  may shrink the threshold, so convergence happens over several audited
  deployments rather than one uncheckable jump.

- ``synthesize`` — expand a :class:`~repro.core.synthesis.PolicyManifest`
  into property guardrails (P1–P5) via
  :func:`~repro.core.synthesis.synthesize_guardrails`, each carrying
  provenance naming the manifest fields it derives from.

Every proposal is a :class:`Proposal`: kind, guardrail name, version
number, spec text, and a machine-readable provenance dict — convertible
to a :class:`~repro.fleet.rollout.GuardrailVersion` for deployment and
persisted verbatim in the results store's ``proposals`` table.
"""

from repro.core.synthesis import (
    PolicyManifest,
    synthesis_provenance,
    synthesize_guardrails,
)
from repro.eval.calibrate import _round_2sf as round_2sf
from repro.fleet.rollout import GuardrailVersion
from repro.fleet.scenario import GUARDRAIL_NAME

#: Tightening defaults.  The quantile/margin pair is the same envelope
#: shape the host-local AutoTightener uses; the floor is an operator
#: lower bound no proposal may cross; max_step bounds per-proposal shrink.
TIGHTEN_QUANTILE = 0.99
TIGHTEN_MARGIN = 1.5
TIGHTEN_FLOOR = 0.05
TIGHTEN_MAX_STEP = 0.5

#: The proposed enforcing spec, threshold mined from fleet behavior.  Same
#: trigger/rule/action shape as the hand-written FLEET_SPEC_V2 — the
#: autopilot's job is to *derive* the threshold that spec hard-codes.
TIGHTEN_SPEC_TEMPLATE = """
guardrail low-false-submit {{
  // autopilot v{version}: threshold mined from fleet digest history.
  trigger: {{ TIMER(start_time, 1e9) }},
  rule: {{ LOAD(false_submit_rate) <= {threshold} }},
  action: {{
    SAVE(ml_enabled, false),
    REPORT()
  }}
}}
"""


def build_tighten_spec(threshold, version):
    """The enforcing guardrail text for one proposed threshold."""
    return TIGHTEN_SPEC_TEMPLATE.format(
        version=version, threshold=format(threshold, "g"))


class Proposal:
    """One autopilot proposal: a versioned spec plus why it was made."""

    __slots__ = ("kind", "guardrail", "version", "spec", "provenance")

    def __init__(self, kind, guardrail, version, spec, provenance):
        self.kind = kind
        self.guardrail = guardrail
        self.version = int(version)
        self.spec = spec
        self.provenance = provenance

    def to_dict(self):
        return {
            "kind": self.kind,
            "guardrail": self.guardrail,
            "version": self.version,
            "spec": self.spec,
            "provenance": self.provenance,
        }

    def guardrail_version(self):
        """The deployable :class:`GuardrailVersion`, provenance attached."""
        return GuardrailVersion(self.guardrail, self.version, self.spec,
                                provenance=self.provenance)

    def __repr__(self):
        return "Proposal({} {} v{})".format(self.kind, self.guardrail,
                                            self.version)


# -- mining -----------------------------------------------------------------


def mine_false_submit_samples(store, run_ids, version=None):
    """Per-``(round, host)`` false-submit fractions from stored digests.

    Samples come back in deterministic ``(run, round, host)`` order.
    ``version`` restricts mining to digests recorded while that guardrail
    version was deployed — behavior observed under an older spec must not
    leak into a newer proposal's evidence.  Rows with no model submits
    carry no signal and are skipped.
    """
    samples = []
    for run_id in sorted(run_ids):
        for row in store.digest_rows(run_id):
            if version is not None and row["version"] != version:
                continue
            if row["model_submits"] <= 0:
                continue
            samples.append(row["false_submits"] / row["model_submits"])
    return samples


def exact_quantile(samples, q):
    """Exact sorted-interpolation quantile (numpy's ``linear`` method).

    Deterministic pure-python arithmetic: no sketch, no estimator state —
    proposal evidence must be byte-reproducible from the store alone.
    """
    if not samples:
        raise ValueError("cannot take a quantile of no samples")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1], got {}".format(q))
    ordered = sorted(samples)
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def observed_band(samples, quantile):
    """The evidence summary a tightening proposal carries as provenance."""
    return {
        "samples": len(samples),
        "quantile": quantile,
        "quantile_value": exact_quantile(samples, quantile),
        "observed_min": min(samples),
        "observed_max": max(samples),
    }


# -- proposal construction ---------------------------------------------------


def propose_tightening(samples, prior_threshold, next_version,
                       quantile=TIGHTEN_QUANTILE, margin=TIGHTEN_MARGIN,
                       floor=TIGHTEN_FLOOR, max_step=TIGHTEN_MAX_STEP,
                       guardrail=GUARDRAIL_NAME):
    """A tightened-threshold :class:`Proposal`, or ``None`` when converged.

    The candidate is ``quantile(samples) * margin`` clamped three ways:
    never below ``floor``, never shrinking more than ``max_step`` of the
    prior threshold in one proposal, and rounded to two significant
    figures (same rounding gate calibration applies).  A candidate at or
    above the prior threshold means the deployed envelope already sits
    against observed behavior — converged, nothing to propose.
    """
    if not samples:
        return None
    band = observed_band(samples, quantile)
    candidate = band["quantile_value"] * margin
    candidate = max(candidate, floor, prior_threshold * (1.0 - max_step))
    candidate = round_2sf(candidate)
    if candidate >= prior_threshold:
        return None
    provenance = {
        "kind": "tighten",
        "key": "false_submit_rate",
        "prior_threshold": prior_threshold,
        "threshold": candidate,
        "band": band,
        "margin": margin,
        "floor": floor,
        "max_step": max_step,
    }
    spec = build_tighten_spec(candidate, next_version)
    return Proposal("tighten", guardrail, next_version, spec, provenance)


def storage_policy_manifest():
    """The Figure-2 storage stand-in policy, described as a manifest.

    What a training pipeline for the LinnOS-style policy would declare
    anyway: the slot it occupies, the registered safe implementation, and
    the (lower-is-better) reward metric the fleet digests already track.
    """
    return PolicyManifest(
        name="storage",
        slot="storage.pick_device",
        fallback="storage.shortest_queue",
        model="linnos",
        reward_key="false_submit_rate",
        baseline_key="baseline_false_submit_rate",
        higher_is_better=False,
    )


def propose_synthesis(manifest, base_version=1):
    """Synthesized-metric :class:`Proposal` list for one policy manifest.

    One proposal per applicable property, in property-id order, each
    named ``<policy>-<property>`` and carrying the manifest fields it was
    derived from.  These are *recorded* for audit (``grctl query
    autopilot``), not deployed: the simulated fleet hosts do not publish
    the synthesized instrumentation keys, so deploying would only trip
    the inconclusive-rate gate.
    """
    specs = synthesize_guardrails(manifest)
    proposals = []
    for property_id in sorted(specs):
        provenance = {
            "kind": "synthesize",
            "property": property_id,
            "policy": manifest.name,
            "manifest": synthesis_provenance(manifest, property_id),
        }
        proposals.append(Proposal(
            "synthesize", "{}-{}".format(manifest.name, property_id),
            base_version, specs[property_id], provenance))
    return proposals


__all__ = [
    "Proposal",
    "TIGHTEN_FLOOR",
    "TIGHTEN_MARGIN",
    "TIGHTEN_MAX_STEP",
    "TIGHTEN_QUANTILE",
    "build_tighten_spec",
    "exact_quantile",
    "mine_false_submit_samples",
    "observed_band",
    "propose_synthesis",
    "propose_tightening",
    "storage_policy_manifest",
]

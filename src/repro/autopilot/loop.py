"""The autopilot loop: observe -> propose -> deploy -> verdict -> back off.

One iteration of :func:`run_autopilot`:

1. **Observe** — bake the fleet on the currently deployed guardrail
   version for a few lockstep rounds, streaming every host digest into
   the results store as a run of kind ``autopilot.observe`` (same
   per-round transactional commits the service loop uses).
2. **Propose** — mine the observe run's digests for per-``(round, host)``
   false-submit fractions and build a tightened-threshold
   :class:`~repro.autopilot.propose.Proposal`; persist it with its
   provenance in the store's ``proposals`` table.
3. **Deploy** — roll the proposed spec out through the *existing*
   staged-rollout control plane (canary -> 25% -> 100%, three-axis health
   gates, whole-cohort rollback), recorded as a run of kind
   ``autopilot.deploy``.  The autopilot gets no special path: its
   proposals face exactly the gates a human operator's would.
4. **Verdict** — a completed rollout promotes the proposal (the next
   iteration observes under the new version); a tripped gate records
   ``rolled_back``, widens the proposal margin by ``backoff``, and holds
   the loop observe-only for ``cooldown`` iterations.  A spec that was
   rolled back is never re-proposed verbatim — the margin widening and
   the explicit rejected-spec guard both forbid it.

The loop converges when a fresh proposal would not tighten the deployed
threshold any further.  Everything is virtual-clock deterministic: the
result dict is byte-identical across reruns and ``jobs`` values.
"""

from repro.autopilot.propose import (
    TIGHTEN_FLOOR,
    TIGHTEN_MARGIN,
    TIGHTEN_MAX_STEP,
    TIGHTEN_QUANTILE,
    mine_false_submit_samples,
    propose_synthesis,
    propose_tightening,
    storage_policy_manifest,
)
from repro.fleet.rollout import RolloutController
from repro.fleet.scenario import (
    build_fleet_rollout,
    fleet_versions,
    make_fleet_specs,
)
from repro.fleet.worker import FleetRunner
from repro.service.loop import StoreObserver
from repro.service.store import StoreError
from repro.sim.units import SECOND
from repro.trace.tracer import TRACER

#: The relaxed starting point: FLEET_SPEC_V1's observe-only threshold.
INITIAL_THRESHOLD = 0.5

#: How long each observe bake runs, in lockstep rounds.
OBSERVE_ROUNDS = 3
OBSERVE_ROUNDS_QUICK = 2

#: Backoff defaults: widen the envelope margin after a rollback, then
#: observe-only for this many iterations before proposing again.
BACKOFF_FACTOR = 2.0
COOLDOWN_ITERATIONS = 1


class AutopilotError(Exception):
    """The loop cannot run against the given store or scenario."""


def run_autopilot(store, hosts=8, stages="canary:1,25%,100%", seed=42,
                  jobs=1, iterations=3, quick=False, corrupt_at=None,
                  quantile=TIGHTEN_QUANTILE, margin=TIGHTEN_MARGIN,
                  floor=TIGHTEN_FLOOR, max_step=TIGHTEN_MAX_STEP,
                  backoff=BACKOFF_FACTOR, cooldown=COOLDOWN_ITERATIONS,
                  deploy=True, synthesize=True):
    """Run the closed loop; returns the deterministic autopilot report.

    ``corrupt_at`` injects the fig2 corrupt-telemetry fault into the
    canary host during that iteration's deploy bake — the deliberately
    bad proposal the health gates must catch.  ``deploy=False`` stops
    after recording the first proposal (``grctl autopilot propose``).
    """
    if iterations < 1:
        raise AutopilotError("iterations must be >= 1")
    observe_rounds = OBSERVE_ROUNDS_QUICK if quick else OBSERVE_ROUNDS
    rate_ios = 250 if quick else 500

    loop = _LoopState(margin)
    current_version, _ = fleet_versions()  # v1: the relaxed observe spec
    threshold = INITIAL_THRESHOLD
    next_version = current_version.version + 1
    rejected_specs = set()
    entries = []

    synthesis = []
    if synthesize:
        manifest = storage_policy_manifest()
        for proposal in propose_synthesis(manifest):
            proposal_id = _record(store, proposal, verdict="recorded")
            synthesis.append(dict(proposal.to_dict(),
                                  proposal_id=proposal_id,
                                  verdict="recorded"))
            _emit("synthesize", loop,
                  {"guardrail": proposal.guardrail,
                   "property": proposal.provenance["property"]})

    converged = False
    deployed = rolled_back = 0
    for iteration in range(iterations):
        entry = {"iteration": iteration}
        observe_run = _observe(store, loop, current_version, hosts, seed,
                               rate_ios, observe_rounds, jobs, iteration,
                               threshold)
        samples = mine_false_submit_samples(
            store, [observe_run], version=current_version.version)
        entry["observe_run"] = observe_run
        entry["samples"] = len(samples)

        if loop.cooldown_left > 0:
            loop.cooldown_left -= 1
            entry["action"] = "cooldown"
            entry["cooldown_left"] = loop.cooldown_left
            _finish_entry(entry, threshold, loop)
            entries.append(entry)
            _emit("cooldown", loop, {"iteration": iteration,
                                     "left": loop.cooldown_left})
            continue

        proposal = propose_tightening(
            samples, threshold, next_version, quantile=quantile,
            margin=loop.margin, floor=floor, max_step=max_step,
            guardrail=current_version.name)
        if proposal is None:
            converged = True
            entry["action"] = "converged"
            _finish_entry(entry, threshold, loop)
            entries.append(entry)
            _emit("converged", loop, {"threshold": threshold})
            break
        if proposal.spec in rejected_specs:
            # The gates already rejected this exact spec; widen further
            # rather than asking the fleet the same question again.
            loop.margin *= backoff
            entry["action"] = "suppressed"
            entry["proposal"] = proposal.to_dict()
            _finish_entry(entry, threshold, loop)
            entries.append(entry)
            _emit("suppressed", loop,
                  {"version": proposal.version, "margin": loop.margin})
            continue

        proposal_id = _record(store, proposal)
        next_version += 1
        entry["proposal"] = proposal.to_dict()
        entry["proposal_id"] = proposal_id
        _emit("propose", loop,
              {"version": proposal.version,
               "threshold": proposal.provenance["threshold"],
               "samples": len(samples)})
        if not deploy:
            entry["action"] = "proposed"
            _finish_entry(entry, threshold, loop)
            entries.append(entry)
            break

        fault_hosts = 1 if corrupt_at == iteration else 0
        deploy_run, report = _deploy(
            store, loop, current_version, proposal, hosts, stages, seed,
            quick, jobs, iteration, fault_hosts)
        entry["deploy_run"] = deploy_run
        if report["status"] == "completed":
            store.set_proposal_verdict(proposal_id, "deployed",
                                       deploy_run=deploy_run)
            current_version = proposal.guardrail_version()
            threshold = proposal.provenance["threshold"]
            deployed += 1
            entry["action"] = "deployed"
            _emit("verdict.deployed", loop,
                  {"version": proposal.version, "threshold": threshold})
        else:
            store.set_proposal_verdict(proposal_id, "rolled_back",
                                       deploy_run=deploy_run)
            rejected_specs.add(proposal.spec)
            loop.margin *= backoff
            loop.cooldown_left = cooldown
            rolled_back += 1
            entry["action"] = "rolled_back"
            entry["rolled_back_at_stage"] = report["rolled_back_at_stage"]
            entry["gate_reasons"] = _trip_reasons(report)
            _emit("verdict.rolled_back", loop,
                  {"version": proposal.version,
                   "stage": report["rolled_back_at_stage"],
                   "margin": loop.margin})
        _finish_entry(entry, threshold, loop)
        entries.append(entry)

    return {
        "guardrail": current_version.name,
        "scenario": {
            "hosts": hosts, "stages": stages, "seed": seed,
            "iterations": iterations, "quick": bool(quick),
            "corrupt_at": corrupt_at, "quantile": quantile,
            "margin": margin, "floor": floor, "max_step": max_step,
            "backoff": backoff, "cooldown": cooldown,
            "observe_rounds": observe_rounds, "rate_ios": rate_ios,
        },
        "initial": {"threshold": INITIAL_THRESHOLD,
                    "version": fleet_versions()[0].version},
        "iterations": entries,
        "synthesis": synthesis,
        "final": {
            "threshold": threshold,
            "version": current_version.version,
            "margin": loop.margin,
            "converged": converged,
            "deployed": deployed,
            "rolled_back": rolled_back,
        },
    }


# -- internals ---------------------------------------------------------------


class _LoopState:
    """Mutable loop bookkeeping: margin, cooldown, virtual clock."""

    __slots__ = ("margin", "cooldown_left", "sim_ns")

    def __init__(self, margin):
        self.margin = margin
        self.cooldown_left = 0
        self.sim_ns = 0


def _finish_entry(entry, threshold, loop):
    entry["threshold_after"] = threshold
    entry["margin_after"] = loop.margin


def _emit(name, loop, args):
    if TRACER.active:
        TRACER.emit("autopilot", name, loop.sim_ns, args=args)


def _trip_reasons(report):
    """The tripped gate's reasons, from the deploy report's stages."""
    for stage in report["stages"]:
        if not stage["gate"]["passed"]:
            return list(stage["gate"]["reasons"])
    return []


def _record(store, proposal, verdict="proposed"):
    try:
        return store.record_proposal(
            proposal.kind, proposal.guardrail, proposal.version,
            proposal.spec, proposal.provenance, verdict=verdict)
    except StoreError as exc:
        raise AutopilotError(str(exc))


def _observe(store, loop, version, hosts, seed, rate_ios, rounds, jobs,
             iteration, threshold):
    """One observe bake on the deployed version; returns its run id."""
    _emit("observe.start", loop, {"iteration": iteration,
                                  "version": version.version,
                                  "threshold": threshold})
    scenario = {"iteration": iteration, "hosts": hosts, "seed": seed,
                "rate_ios": rate_ios, "rounds": rounds,
                "threshold": threshold}
    try:
        run_id = store.begin_run(
            "autopilot.observe", scenario, SECOND, hosts,
            total_rounds=rounds, versions={"deployed": version.to_dict()})
        # Each iteration observes a decorrelated workload stream; reruns
        # of the same iteration are identical.
        specs = make_fleet_specs(hosts, seed + 1000 * (iteration + 1),
                                 rate_ios)
        with FleetRunner(specs, version, SECOND, rounds,
                         jobs=jobs) as runner:
            for round_index in range(rounds):
                until_ns = (round_index + 1) * SECOND
                digests = runner.step_round(round_index, until_ns)
                store.commit_round(run_id, round_index, until_ns, digests)
        store.finalize_run(run_id, "completed", final_rounds=rounds)
    except StoreError as exc:
        raise AutopilotError(str(exc))
    loop.sim_ns += rounds * SECOND
    _emit("observe.done", loop, {"iteration": iteration, "run": run_id})
    return run_id


def _deploy(store, loop, old_version, proposal, hosts, stages, seed, quick,
            jobs, iteration, fault_hosts):
    """Deploy one proposal through the rollout control plane, into the store."""
    new_version = proposal.guardrail_version()
    _emit("deploy.start", loop, {"iteration": iteration,
                                 "version": new_version.version,
                                 "fault_hosts": fault_hosts})
    built = build_fleet_rollout(
        hosts=hosts, stages=stages, seed=seed + 1000 * (iteration + 1) + 1,
        fault_hosts=fault_hosts, quick=quick, fault_kind="corrupt",
        versions=(old_version, new_version))
    try:
        run_id = store.begin_run(
            "autopilot.deploy", dict(built.scenario, iteration=iteration),
            SECOND, hosts, total_rounds=built.total_rounds,
            plan=built.plan.to_dict(),
            versions={"old": old_version.to_dict(),
                      "new": new_version.to_dict()})
        observer = StoreObserver(store, run_id)
        with FleetRunner(built.specs, built.old_version, SECOND,
                         built.total_rounds, jobs=jobs) as runner:
            controller = RolloutController(
                runner, built.old_version, built.new_version, built.plan,
                SECOND, observer=observer)
            report = controller.run()
        observer.finalize(report["status"],
                          rolled_back_at=report["rolled_back_at_stage"],
                          final_rounds=report["rounds"])
    except StoreError as exc:
        raise AutopilotError(str(exc))
    loop.sim_ns += report["rounds"] * SECOND
    return run_id, report


__all__ = [
    "AutopilotError",
    "BACKOFF_FACTOR",
    "COOLDOWN_ITERATIONS",
    "INITIAL_THRESHOLD",
    "OBSERVE_ROUNDS",
    "run_autopilot",
]

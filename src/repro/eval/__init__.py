"""Labelled guardrail-quality evaluation (``grctl eval``).

The paper's pitch is that lightweight guardrails make learned OS policies
safe to deploy; this package measures whether *our* guardrails actually
earn that trust.  A versioned labelled dataset (``eval/dataset.jsonl``)
pins down episodes — single-host property probes and staged fleet
rollouts — each with an expected verdict (``trip`` / ``allow`` /
``inconclusive``).  The :class:`~repro.eval.runner.EvalRunner` executes
them through the existing sim/fleet machinery, scores precision/recall/F1
and per-gate-axis false-trip rates with Wilson intervals, and
:mod:`repro.eval.calibrate` sweeps :class:`~repro.fleet.rollout.GateConfig`
thresholds over the recorded measurements to justify (and reproduce) the
committed gate defaults.
"""

from repro.eval.calibrate import calibrate, compare_configs
from repro.eval.dataset import DatasetError, check_dataset, load_dataset
from repro.eval.results import (
    compare_to_baseline,
    dumps_document,
    load_document,
)
from repro.eval.runner import run_eval
from repro.eval.stats import (
    paired_permutation_pvalue,
    precision_recall_f1,
    wilson_interval,
)

__all__ = [
    "DatasetError",
    "calibrate",
    "check_dataset",
    "compare_configs",
    "compare_to_baseline",
    "dumps_document",
    "load_dataset",
    "load_document",
    "paired_permutation_pvalue",
    "precision_recall_f1",
    "run_eval",
    "wilson_interval",
]

"""Gate calibration: sweep thresholds over recorded rollout measurements.

Fleet episodes are recorded under a *permissive* gate, so every stage's
measurements exist regardless of what any real gate would have done —
and because a gate only ever halts a rollout (it never perturbs the
simulation), replaying a candidate :class:`GateConfig` over the records
is exact, not an approximation.  Calibration is therefore pure
arithmetic over an eval results document:

1. Per axis, compute the **feasible band**: the largest value any clean
   episode reaches (the noise ceiling the threshold must clear) and the
   smallest per-episode maximum among the fault episodes that stress
   that axis (the signal floor it must stay under).  The fault-kind ->
   axis mapping is :data:`AXIS_BY_FAULT_KIND`.
2. Recommend a threshold: keep the current value when it already sits
   strictly inside the band (calibration is idempotent on a calibrated
   config); otherwise take the band's log-midpoint rounded to two
   significant figures — a round number centred between noise and
   signal on the axis' natural (multiplicative) scale.
3. Verify: replay the recommended config over every recorded fleet
   episode and require zero clean trips and zero missed faults.  An
   infeasible band (noise ceiling above signal floor) is reported, never
   silently split.
"""

import math

from repro.eval.episodes import GATE_AXES, fleet_verdict
from repro.eval.stats import paired_permutation_pvalue

#: Which gate axis each fleet fault kind is constructed to stress.
AXIS_BY_FAULT_KIND = {"corrupt": "inconclusive", "drift": "violation",
                      "stall": "p95"}


def _fleet_results(document):
    results = [result for result in document["episodes"]
               if result["kind"] == "fleet"]
    missing = [result["id"] for result in results
               if not result.get("stages")]
    if missing:
        raise ValueError(
            "document has fleet episodes without recorded stage "
            "measurements (rerun `grctl eval run`): {}".format(
                ", ".join(missing)))
    return results


def _episode_max(result, measurement_key):
    values = [stage["measurements"][measurement_key]
              for stage in result["stages"]
              if stage["measurements"][measurement_key] is not None]
    return max(values) if values else None


def _round_2sf(value):
    if value == 0:
        return 0.0
    digits = 1 - int(math.floor(math.log10(abs(value))))
    return round(value, digits)


def _axis_band(results, axis, measurement_key):
    clean = []
    faulty = []
    for result in results:
        peak = _episode_max(result, measurement_key)
        if peak is None:
            continue
        if result["expected"] == "allow":
            clean.append((peak, result["id"]))
        elif AXIS_BY_FAULT_KIND[result["fault_kind"]] == axis:
            faulty.append((peak, result["id"]))
    clean_max = max(clean) if clean else None
    fault_min = min(faulty) if faulty else None
    curve = sorted({peak for peak, _ in clean} | {peak for peak, _ in faulty})
    operating_curve = [{
        "threshold": threshold,
        "clean_false_trips": sum(1 for peak, _ in clean if peak > threshold),
        "fault_misses": sum(1 for peak, _ in faulty if peak <= threshold),
    } for threshold in curve]
    return {
        "clean_max": clean_max[0] if clean else None,
        "clean_max_episode": clean_max[1] if clean else None,
        "fault_min": fault_min[0] if faulty else None,
        "fault_min_episode": fault_min[1] if faulty else None,
        "clean_episodes": len(clean),
        "fault_episodes": len(faulty),
        "operating_curve": operating_curve,
    }


def _recommend(band, current):
    """(value, how) for one axis given its band and the current setting."""
    clean_max, fault_min = band["clean_max"], band["fault_min"]
    if clean_max is None or fault_min is None:
        return current, "kept: no {} data to calibrate against".format(
            "clean" if clean_max is None else "fault")
    if fault_min <= clean_max:
        return current, ("infeasible: clean episodes reach {:.4g} but a "
                         "fault episode peaks at {:.4g}; kept current"
                         .format(clean_max, fault_min))
    if clean_max < current < fault_min:
        return current, "kept: current value is inside the feasible band"
    if clean_max > 0:
        midpoint = math.sqrt(clean_max * fault_min)
    else:
        midpoint = (clean_max + fault_min) / 2.0
    rounded = _round_2sf(midpoint)
    if not clean_max < rounded < fault_min:
        rounded = midpoint  # rounding left the band; use the exact midpoint
    return rounded, "recalibrated to the band log-midpoint"


def evaluate_config(gate, results):
    """Offline verdicts of ``gate`` over recorded fleet episodes.

    Returns per-episode correctness plus the clean-trip / missed-fault
    tallies the verification step gates on.
    """
    per_episode = []
    clean_trips = missed_faults = 0
    for result in results:
        verdict = fleet_verdict(gate, result["stages"])
        correct = verdict["verdict"] == result["expected"]
        if not correct:
            if result["expected"] == "allow":
                clean_trips += 1
            else:
                missed_faults += 1
        per_episode.append({
            "id": result["id"],
            "expected": result["expected"],
            "verdict": verdict["verdict"],
            "tripped_stage": verdict["tripped_stage"],
            "tripped_axes": verdict["tripped_axes"],
            "correct": correct,
        })
    return {
        "per_episode": per_episode,
        "clean_trips": clean_trips,
        "missed_faults": missed_faults,
        "passed": clean_trips == 0 and missed_faults == 0,
    }


def compare_configs(document, gate_a, gate_b, seed=0):
    """Paired comparison of two gate configs on the same fleet episodes.

    Correctness is the per-episode score; the permutation test asks
    whether the accuracy difference could be label-flipping noise.
    """
    results = _fleet_results(document)
    a = evaluate_config(gate_a, results)
    b = evaluate_config(gate_b, results)
    scores_a = [1 if entry["correct"] else 0 for entry in a["per_episode"]]
    scores_b = [1 if entry["correct"] else 0 for entry in b["per_episode"]]
    return {
        "n": len(results),
        "a": {"gate": gate_a.to_dict(), "correct": sum(scores_a),
              "clean_trips": a["clean_trips"],
              "missed_faults": a["missed_faults"]},
        "b": {"gate": gate_b.to_dict(), "correct": sum(scores_b),
              "clean_trips": b["clean_trips"],
              "missed_faults": b["missed_faults"]},
        "p_value": paired_permutation_pvalue(scores_a, scores_b, seed=seed),
    }


def calibrate(document, current=None):
    """Calibrate a :class:`GateConfig` from a recorded eval document.

    ``current`` seeds the keep-if-in-band rule (default: the shipped
    defaults, making the committed configuration self-reproducing).
    Returns the recommendation document; ``recommended`` is the config
    dict, ``verification.passed`` says whether it separates every
    labelled episode.
    """
    from repro.fleet.rollout import GateConfig

    current = current or GateConfig()
    results = _fleet_results(document)
    axes = {}
    recommended_kwargs = {"min_checks": current.min_checks}
    for axis, measurement_key, threshold_attr in GATE_AXES:
        band = _axis_band(results, axis, measurement_key)
        value, how = _recommend(band, getattr(current, threshold_attr))
        band["current"] = getattr(current, threshold_attr)
        band["recommended"] = value
        band["how"] = how
        axes[axis] = band
        recommended_kwargs[threshold_attr] = value
    recommended = GateConfig(**recommended_kwargs)
    verification = evaluate_config(recommended, results)
    return {
        "fleet_episodes": len(results),
        "axes": axes,
        "current": current.to_dict(),
        "recommended": recommended.to_dict(),
        "changed": recommended.to_dict() != current.to_dict(),
        "verification": verification,
    }


__all__ = ["AXIS_BY_FAULT_KIND", "calibrate", "compare_configs",
           "evaluate_config"]

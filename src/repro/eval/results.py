"""Eval documents on disk: canonical serialisation and baseline diffs.

The committed baseline (``EVAL_baseline.json``) is a full-tier results
document.  CI's quick runs execute a subset of its episodes, so the
comparison is **scoped**: only episodes the current run actually
executed are judged, and the gate is *per-episode correctness*, not
score equality — a quick run must not fail because the full-tier-only
episodes it skipped moved the aggregate numbers.

A **regression** is an episode that is incorrect now but was correct in
the baseline (or is too new to have a baseline entry — new episodes must
pass on arrival).  An episode incorrect in both runs is a *known
failure*: still reported, but not a new break.
"""

import json


def dumps_document(document):
    """The one canonical byte encoding of an eval/calibration document."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def load_document(path):
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "episodes" not in document:
        raise ValueError(
            "{} is not an eval results document (no episodes)".format(path))
    return document


def compare_to_baseline(document, baseline):
    """Scoped comparison of ``document`` against a baseline document."""
    baseline_by_id = {result["id"]: result
                      for result in baseline["episodes"]}
    regressions = []
    improvements = []
    known_failures = []
    new_episodes = []
    for result in document["episodes"]:
        before = baseline_by_id.get(result["id"])
        if before is None:
            new_episodes.append(result["id"])
        entry = {
            "id": result["id"],
            "expected": result["expected"],
            "verdict": result["verdict"],
            "baseline_verdict": before["verdict"] if before else None,
        }
        if result["correct"]:
            if before is not None and not before["correct"]:
                improvements.append(entry)
        elif before is not None and not before["correct"]:
            known_failures.append(entry)
        else:
            regressions.append(entry)
    return {
        "baseline": {
            "dataset_version": baseline["dataset"]["dataset_version"],
            "tier": baseline["tier"],
            "gate": baseline["gate"],
        },
        "dataset_version_changed": (
            document["dataset"]["dataset_version"]
            != baseline["dataset"]["dataset_version"]),
        "compared": len(document["episodes"]) - len(new_episodes),
        "new_episodes": sorted(new_episodes),
        "regressions": regressions,
        "improvements": improvements,
        "known_failures": known_failures,
        "accuracy": {
            "current": document["scores"]["accuracy"],
            "baseline": baseline["scores"]["accuracy"],
        },
        "passed": not regressions,
    }


__all__ = ["compare_to_baseline", "dumps_document", "load_document"]

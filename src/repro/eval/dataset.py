"""The labelled episode dataset (``eval/dataset.jsonl``).

The dataset is a JSONL file under version discipline (see
``eval/DATASET_VERSION.md``): the first record is a header carrying the
schema version (the *format*) and the dataset version (the *contents*);
every other record is one labelled episode.  Episode labels are not free
text — each expected verdict is forced by the episode's construction
(host regimes map 1:1 onto verdicts; a fleet rollout with faulted hosts
must trip, a clean one must not), and :func:`load_dataset` re-derives and
enforces every label, so a mislabelled line is a load error rather than a
silent scoring skew.

Three episode kinds:

- ``host`` — one guardrail family probe (see
  :data:`repro.eval.episodes.HOST_FAMILIES`) in one regime on one seed;
- ``fleet`` — one staged rollout (hosts/seed/faults) recorded under a
  permissive gate and judged offline;
- ``scenario`` — one named registry scenario (see
  :mod:`repro.scenarios`), typically a multi-policy cross-product;
  seed, duration, and fault plan live in the registry spec, so the
  episode only names the scenario and carries the forced label.

``tier`` splits the dataset the same way the bench suite splits: CI's
``eval-smoke`` runs the ``quick`` episodes only; the committed baseline
is produced from the full set.
"""

import json
import os

SCHEMA_VERSION = "1.0"

EXPECTED_VERDICTS = ("allow", "inconclusive", "trip")
TIERS = ("quick", "full")

_HEADER_FIELDS = {"record", "schema_version", "dataset_version",
                  "description"}
_COMMON_FIELDS = {"record", "id", "kind", "tier", "expected", "notes"}
_HOST_FIELDS = _COMMON_FIELDS | {"family", "regime", "seed"}
_FLEET_FIELDS = _COMMON_FIELDS | {"hosts", "seed", "fault_hosts",
                                  "fault_kind"}
_SCENARIO_FIELDS = _COMMON_FIELDS | {"scenario"}

EPISODE_KINDS = ("host", "fleet", "scenario")


class DatasetError(Exception):
    """A structural or labelling problem in the episode dataset."""


def default_dataset_path():
    """The in-repo dataset (``eval/dataset.jsonl`` next to ``src/``)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "eval", "dataset.jsonl")


def _fail(line_no, message):
    raise DatasetError("dataset line {}: {}".format(line_no, message))


def _require(record, line_no, field, kinds):
    if field not in record:
        _fail(line_no, "missing field {!r}".format(field))
    value = record[field]
    if not isinstance(value, kinds) or isinstance(value, bool) != (
            kinds is bool):
        _fail(line_no, "field {!r} must be {}, got {!r}".format(
            field, getattr(kinds, "__name__", kinds), value))
    return value


def _check_host(record, line_no):
    from repro.eval.episodes import EXPECTED_BY_REGIME, HOST_FAMILIES

    unknown = set(record) - _HOST_FIELDS
    if unknown:
        _fail(line_no, "unknown host-episode field(s): {}".format(
            ", ".join(sorted(unknown))))
    family = _require(record, line_no, "family", str)
    if family not in HOST_FAMILIES:
        _fail(line_no, "unknown family {!r}; known: {}".format(
            family, ", ".join(sorted(HOST_FAMILIES))))
    regime = _require(record, line_no, "regime", str)
    if regime not in EXPECTED_BY_REGIME:
        _fail(line_no, "unknown regime {!r}; known: {}".format(
            regime, ", ".join(sorted(EXPECTED_BY_REGIME))))
    _require(record, line_no, "seed", int)
    forced = EXPECTED_BY_REGIME[regime]
    if record["expected"] != forced:
        _fail(line_no, "a {!r} host episode must expect {!r}, got {!r} "
              "(labels are derived, not free text)".format(
                  regime, forced, record["expected"]))


def _check_fleet(record, line_no):
    from repro.fleet.scenario import FLEET_FAULT_KINDS

    unknown = set(record) - _FLEET_FIELDS
    if unknown:
        _fail(line_no, "unknown fleet-episode field(s): {}".format(
            ", ".join(sorted(unknown))))
    hosts = _require(record, line_no, "hosts", int)
    if hosts < 1:
        _fail(line_no, "hosts must be >= 1, got {}".format(hosts))
    _require(record, line_no, "seed", int)
    fault_hosts = _require(record, line_no, "fault_hosts", int)
    if not 0 <= fault_hosts <= hosts:
        _fail(line_no, "fault_hosts must be in [0, hosts], got {}".format(
            fault_hosts))
    fault_kind = record.get("fault_kind")
    if fault_hosts == 0:
        if fault_kind is not None:
            _fail(line_no, "a clean fleet episode must have fault_kind null")
        forced = "allow"
    else:
        if fault_kind not in FLEET_FAULT_KINDS:
            _fail(line_no, "unknown fault_kind {!r}; known: {}".format(
                fault_kind, ", ".join(FLEET_FAULT_KINDS)))
        forced = "trip"
    if record["expected"] != forced:
        _fail(line_no, "a fleet episode with fault_hosts={} must expect "
              "{!r}, got {!r}".format(fault_hosts, forced,
                                      record["expected"]))


def _check_scenario(record, line_no):
    from repro.scenarios import get_scenario

    unknown = set(record) - _SCENARIO_FIELDS
    if unknown:
        _fail(line_no, "unknown scenario-episode field(s): {}".format(
            ", ".join(sorted(unknown))))
    name = _require(record, line_no, "scenario", str)
    try:
        spec = get_scenario(name)
    except KeyError:
        from repro.scenarios import scenario_names
        _fail(line_no, "unknown scenario {!r}; see `grctl scenarios list` "
              "({} registered)".format(name, len(scenario_names())))
    forced_tier = "quick" if spec.quick else "full"
    if record["tier"] != forced_tier:
        _fail(line_no, "scenario {!r} is {}-tier in the registry, episode "
              "says {!r}".format(name, forced_tier, record["tier"]))
    forced = spec.expected_overall()
    if record["expected"] != forced:
        _fail(line_no, "scenario {!r} must expect {!r} (the registry's "
              "collapsed verdict), got {!r}".format(
                  name, forced, record["expected"]))


def load_dataset(path=None):
    """Parse and fully validate the dataset; returns ``(header, episodes)``.

    ``episodes`` is a list of plain dicts in file order.  Any structural
    problem — bad JSON, unknown fields, duplicate ids, a label that
    contradicts the episode's construction — raises :class:`DatasetError`
    naming the offending line.
    """
    path = path or default_dataset_path()
    try:
        with open(path) as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        raise DatasetError("cannot read dataset {}: {}".format(path, exc))

    header = None
    episodes = []
    seen_ids = set()
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            _fail(line_no, "blank lines are not allowed")
        try:
            record = json.loads(line)
        except ValueError as exc:
            _fail(line_no, "invalid JSON: {}".format(exc))
        if not isinstance(record, dict):
            _fail(line_no, "every record must be an object")
        kind = record.get("record")
        if line_no == 1:
            if kind != "header":
                _fail(line_no, "first record must be the header")
            unknown = set(record) - _HEADER_FIELDS
            if unknown:
                _fail(line_no, "unknown header field(s): {}".format(
                    ", ".join(sorted(unknown))))
            schema = _require(record, line_no, "schema_version", str)
            if schema.split(".")[0] != SCHEMA_VERSION.split(".")[0]:
                _fail(line_no, "schema_version {} is incompatible with "
                      "reader {}".format(schema, SCHEMA_VERSION))
            _require(record, line_no, "dataset_version", str)
            header = record
            continue
        if kind != "episode":
            _fail(line_no, "expected an episode record, got {!r}".format(
                kind))
        episode_id = _require(record, line_no, "id", str)
        if episode_id in seen_ids:
            _fail(line_no, "duplicate episode id {!r}".format(episode_id))
        seen_ids.add(episode_id)
        tier = _require(record, line_no, "tier", str)
        if tier not in TIERS:
            _fail(line_no, "unknown tier {!r}; known: {}".format(
                tier, ", ".join(TIERS)))
        expected = _require(record, line_no, "expected", str)
        if expected not in EXPECTED_VERDICTS:
            _fail(line_no, "unknown expected verdict {!r}; known: {}".format(
                expected, ", ".join(EXPECTED_VERDICTS)))
        episode_kind = _require(record, line_no, "kind", str)
        if episode_kind == "host":
            _check_host(record, line_no)
        elif episode_kind == "fleet":
            _check_fleet(record, line_no)
        elif episode_kind == "scenario":
            _check_scenario(record, line_no)
        else:
            _fail(line_no, "unknown episode kind {!r}".format(episode_kind))
        episodes.append(record)

    if header is None:
        raise DatasetError("dataset {} is empty".format(path))
    if not episodes:
        raise DatasetError("dataset {} has a header but no episodes".format(
            path))
    return header, episodes


def check_dataset(path=None):
    """Integrity check for CI: validate the dataset and its version doc.

    On top of :func:`load_dataset`'s structural validation, requires the
    sibling ``DATASET_VERSION.md`` to mention the header's
    ``dataset_version`` — the CHANGELOG discipline: you cannot change the
    dataset without writing down what changed.  Returns a summary dict.
    """
    path = path or default_dataset_path()
    header, episodes = load_dataset(path)
    version_doc = os.path.join(os.path.dirname(os.path.abspath(path)),
                               "DATASET_VERSION.md")
    try:
        with open(version_doc) as handle:
            doc = handle.read()
    except OSError as exc:
        raise DatasetError(
            "dataset version doc is required next to the dataset "
            "({}): {}".format(version_doc, exc))
    version = header["dataset_version"]
    if version not in doc:
        raise DatasetError(
            "DATASET_VERSION.md has no entry for dataset_version {} — "
            "add a CHANGELOG entry describing the change".format(version))

    def count(predicate):
        return sum(1 for episode in episodes if predicate(episode))

    return {
        "path": path,
        "schema_version": header["schema_version"],
        "dataset_version": version,
        "episodes": len(episodes),
        "by_kind": {
            kind: count(lambda e, kind=kind: e["kind"] == kind)
            for kind in EPISODE_KINDS
        },
        "by_tier": {
            tier: count(lambda e, tier=tier: e["tier"] == tier)
            for tier in TIERS
        },
        "by_expected": {
            verdict: count(lambda e, v=verdict: e["expected"] == v)
            for verdict in EXPECTED_VERDICTS
        },
    }


__all__ = [
    "DatasetError",
    "EPISODE_KINDS",
    "EXPECTED_VERDICTS",
    "SCHEMA_VERSION",
    "TIERS",
    "check_dataset",
    "default_dataset_path",
    "load_dataset",
]

"""Statistics for guardrail-quality scoring.

Three tools, all exact/deterministic:

- :func:`wilson_interval` — the score interval for a binomial proportion.
  Eval sample sizes are small (a dozen clean rollout seeds), where the
  familiar normal approximation is badly anti-conservative; Wilson behaves
  at n=1 and at p-hat of 0 or 1.
- :func:`paired_permutation_pvalue` — a seeded sign-flip permutation test
  for paired per-episode outcomes (config A vs config B on the same
  episodes).  No distributional assumptions, and a fixed seed makes the
  p-value reproducible byte-for-byte.
- :func:`precision_recall_f1` — confusion-count arithmetic with the usual
  zero-denominator conventions.
"""

import math
import random


def wilson_interval(successes, n, z=1.96):
    """Wilson score interval for ``successes``/``n``; returns ``(lo, hi)``.

    ``n=0`` returns the vacuous ``(0.0, 1.0)`` — no data constrains
    nothing — rather than raising, so callers can annotate empty cells.
    """
    if n < 0:
        raise ValueError("n must be >= 0, got {}".format(n))
    if not 0 <= successes <= n:
        raise ValueError(
            "successes must be in [0, n], got {}/{}".format(successes, n))
    if n == 0:
        return (0.0, 1.0)
    p = successes / n
    z2 = z * z
    denominator = 1.0 + z2 / n
    centre = (p + z2 / (2.0 * n)) / denominator
    spread = (z / denominator) * math.sqrt(
        p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return (max(0.0, centre - spread), min(1.0, centre + spread))


def paired_permutation_pvalue(scores_a, scores_b, seed=0, rounds=10_000):
    """Two-sided paired permutation test on per-episode score pairs.

    ``scores_a``/``scores_b`` are equal-length sequences (e.g. 0/1
    correctness of two gate configs on the same episodes).  Under the
    null the pair labels are exchangeable, so each pair's difference has
    its sign flipped with probability 1/2; the p-value is the fraction of
    sign assignments whose |mean difference| is at least the observed
    one.  With every difference zero the configs are indistinguishable
    and the p-value is 1.0.  The RNG is seeded, so reruns match exactly.
    """
    if len(scores_a) != len(scores_b):
        raise ValueError("paired samples must have equal length, got {}/{}"
                         .format(len(scores_a), len(scores_b)))
    diffs = [a - b for a, b in zip(scores_a, scores_b)]
    if not any(diffs):
        return 1.0
    observed = abs(sum(diffs) / len(diffs))
    rng = random.Random(seed)
    at_least = 0
    for _ in range(rounds):
        total = 0.0
        for diff in diffs:
            total += diff if rng.random() < 0.5 else -diff
        if abs(total / len(diffs)) >= observed - 1e-12:
            at_least += 1
    # +1/+1 smoothing: the identity permutation always ties the observed
    # statistic, so the p-value can never be reported as 0.
    return (at_least + 1) / (rounds + 1)


def precision_recall_f1(tp, fp, fn):
    """Precision/recall/F1 from confusion counts (0.0 on empty cells)."""
    if min(tp, fp, fn) < 0:
        raise ValueError("confusion counts must be >= 0")
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    if precision + recall == 0.0:
        f1 = 0.0
    else:
        f1 = 2.0 * precision * recall / (precision + recall)
    return {"precision": precision, "recall": recall, "f1": f1}


__all__ = ["paired_permutation_pvalue", "precision_recall_f1",
           "wilson_interval"]

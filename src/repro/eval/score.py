"""Scoring: per-episode results -> guardrail-quality metrics.

Everything here is arithmetic over the per-episode result dicts the
runner produced — no simulation, no randomness — so scores are exactly
reproducible from a results document alone.

The headline framing treats ``trip`` as the positive class: *precision*
is "when a guardrail tripped, was something actually wrong?" and
*recall* is "when something was wrong, did it trip?".  ``inconclusive``
is scored strictly — a blinded episode answered ``allow`` is wrong, the
guardrail claimed health it could not see.  Small-n rates carry Wilson
intervals (:func:`repro.eval.stats.wilson_interval`) rather than bare
point estimates.
"""

from repro.eval.stats import precision_recall_f1, wilson_interval

#: Result verdicts, in confusion-matrix row/column order.  ``error`` is
#: not a guardrail verdict — it marks an episode whose worker failed.
VERDICTS = ("allow", "inconclusive", "trip", "error")


def _confusion(results):
    matrix = {expected: {verdict: 0 for verdict in VERDICTS}
              for expected in VERDICTS[:3]}
    for result in results:
        matrix[result["expected"]][result["verdict"]] += 1
    return matrix


def _trip_detection(results):
    tp = fp = fn = tn = 0
    for result in results:
        expected_trip = result["expected"] == "trip"
        got_trip = result["verdict"] == "trip"
        if expected_trip and got_trip:
            tp += 1
        elif expected_trip:
            fn += 1
        elif got_trip:
            fp += 1
        else:
            tn += 1
    scores = precision_recall_f1(tp, fp, fn)
    scores.update({
        "tp": tp, "fp": fp, "fn": fn, "tn": tn,
        "recall_ci": wilson_interval(tp, tp + fn),
        "false_trip_rate": fp / (fp + tn) if (fp + tn) else 0.0,
        "false_trip_ci": wilson_interval(fp, fp + tn),
    })
    return scores


def _accuracy(results):
    n = len(results)
    correct = sum(1 for result in results if result["correct"])
    return {
        "n": n,
        "correct": correct,
        "accuracy": correct / n if n else 0.0,
        "accuracy_ci": wilson_interval(correct, n),
    }


def _group(result):
    """Scoring group of one result: host family, fleet fault kind, or the
    domain composition of a registry scenario."""
    if result["kind"] == "host":
        return result["family"]
    if result["kind"] == "scenario":
        return "scenario/{}".format(result["scenario"].split("/")[0])
    kind = result.get("fault_kind")
    return "fleet/{}".format(kind) if kind else "fleet/clean"


def _by_group(results):
    groups = {}
    for result in results:
        groups.setdefault(_group(result), []).append(result)
    out = {}
    for name in sorted(groups):
        members = groups[name]
        scores = _accuracy(members)
        scores["guardrail"] = sorted(
            {m["guardrail"] for m in members if m.get("guardrail")})
        scores.update(_trip_detection(members))
        out[name] = scores
    return out


def _fleet_axis_rates(results):
    """Per-gate-axis false-trip rates over the *clean* fleet episodes.

    An axis false-trips an episode if it appears among the tripped axes
    of any recorded stage — i.e. the gate would have halted a healthy
    rollout on that axis.  This is the measured quantity behind the
    calibrated defaults, so it is reported per axis with Wilson bounds
    even when (especially when) every count is zero.
    """
    from repro.eval.episodes import GATE_AXES

    clean = [result for result in results
             if result["kind"] == "fleet" and result["expected"] == "allow"]
    out = {}
    for axis, _, _ in GATE_AXES:
        false_trips = sum(
            1 for result in clean
            if any(axis in stage.get("tripped_axes", ())
                   for stage in result.get("stage_verdicts", ())))
        out[axis] = {
            "false_trips": false_trips,
            "clean_episodes": len(clean),
            "rate": false_trips / len(clean) if clean else 0.0,
            "ci": wilson_interval(false_trips, len(clean)),
        }
    return out


def score_results(results):
    """The full scoring block of an eval document."""
    scores = _accuracy(results)
    scores["confusion"] = _confusion(results)
    scores["trip_detection"] = _trip_detection(results)
    scores["by_group"] = _by_group(results)
    scores["fleet_axis_false_trips"] = _fleet_axis_rates(results)
    return scores


__all__ = ["VERDICTS", "score_results"]

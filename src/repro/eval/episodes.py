"""Executable eval episodes: host property probes and fleet rollouts.

**Host episodes** exercise one guardrail family per run on a bare
:class:`~repro.kernel.Kernel`: the P1-P6 property templates from
:mod:`repro.core.properties` (plus a dedicated A4 DEPRIORITIZE family —
the only Figure-1 action no property template dispatches) watch a
deterministic, seeded signal generator instead of a trained model, so an
episode runs in milliseconds while the guardrail text, trigger kind, rule
shape, and action are the real thing.  Three regimes per family:

- ``clean`` — the signal stays inside the rule's bound: expected *allow*;
- ``faulty`` — the signal crosses the bound mid-run: expected *trip*;
- ``blinded`` — the signal stays clean but a ``repro.faults``
  ``corrupt@key`` injection NaNs the watched key mid-run: the rule
  runtime treats missing data as *inconclusive*, never as a violation.

**Fleet episodes** run the canonical staged rollout with a *permissive*
gate (every threshold infinite) so all stages execute and every stage's
gate measurements are recorded.  The verdict under any real
:class:`~repro.fleet.rollout.GateConfig` is then computed offline by
:func:`gate_trip_axes` — exactly, not approximately: a gate only ever
*halts* a rollout, so the simulation up to the first tripping stage is
identical with or without enforcement, and "would config C trip this
run" is decidable from the recorded measurements alone.  Calibration
sweeps thresholds over these records without re-running anything.
"""

import math
import random

from repro.sim.units import MILLISECOND, SECOND

#: Virtual duration of one host episode and the regime switch point.
HOST_DURATION_S = 8
FAULT_START_S = 3.5
_SIGNAL_PERIOD_NS = 200 * MILLISECOND

HOST_REGIMES = ("clean", "faulty", "blinded")

EXPECTED_BY_REGIME = {"clean": "allow", "faulty": "trip",
                      "blinded": "inconclusive"}


class _Family:
    """One host-episode family: guardrail text plus its signal model."""

    def __init__(self, prop, action_kind, blind_key, build, signals):
        self.prop = prop
        self.action_kind = action_kind
        self.blind_key = blind_key
        self.build = build        # (kernel) -> guardrail spec text
        self.signals = signals    # (rng, faulty) -> {key: value}


def _noop():
    return None


def _build_p1(kernel):
    from repro.core.properties import in_distribution
    kernel.retrain_queue.register_trainer("probe", lambda request: None)
    return in_distribution("probe")


def _signals_p1(rng, faulty):
    return {
        "probe.input_psi_max": (0.55 + rng.uniform(-0.05, 0.05)) if faulty
        else (0.10 + rng.uniform(-0.05, 0.05)),
        "probe.input_oor_max": 0.01 + rng.uniform(0.0, 0.01),
    }


def _build_p2(kernel):
    from repro.core.properties import robustness
    kernel.retrain_queue.register_trainer("probe", lambda request: None)
    return robustness("probe", sensitivity_threshold=0.5)


def _signals_p2(rng, faulty):
    return {
        "probe.output_sensitivity":
            (1.2 + rng.uniform(-0.2, 0.2)) if faulty
            else (0.15 + rng.uniform(-0.1, 0.1)),
    }


def _build_p3(kernel):
    from repro.core.properties import output_bounds
    kernel.hooks.declare("mm.alloc")
    kernel.functions.register("mm.alloc_policy", _noop)
    kernel.functions.register_implementation("mm.baseline", _noop)
    return output_bounds("mm", "mm.alloc", "granted <= LOAD(mm.quota)",
                         "mm.alloc_policy", "mm.baseline")


def _signals_p3(rng, faulty):
    # The hook payload, not store keys: see _drive_signals.
    quota = 4096.0
    granted = quota * ((1.5 + rng.uniform(-0.1, 0.1)) if faulty
                       else (0.6 + rng.uniform(-0.1, 0.1)))
    return {"mm.quota": quota, "__hook__mm.alloc": {"granted": granted}}


def _build_p4(kernel):
    from repro.core.properties import decision_quality
    kernel.functions.register("cache.policy", _noop)
    kernel.functions.register_implementation("cache.lru", _noop)
    return decision_quality("cache", "cache.hit_rate",
                            "cache.shadow_hit_rate", margin=0.02,
                            fallback_slot="cache.policy",
                            fallback_impl="cache.lru")


def _signals_p4(rng, faulty):
    return {
        "cache.shadow_hit_rate": 0.70 + rng.uniform(-0.02, 0.02),
        "cache.hit_rate": (0.45 + rng.uniform(-0.03, 0.03)) if faulty
        else (0.78 + rng.uniform(-0.03, 0.03)),
    }


def _build_p5(kernel):
    from repro.core.properties import decision_overhead
    return decision_overhead("probe")


def _signals_p5(rng, faulty):
    net = ((-800_000 + rng.uniform(-100_000, 100_000)) if faulty
           else (500_000 + rng.uniform(-100_000, 100_000)))
    # The template's REPORT action loads the meter's cost/gain ledger keys,
    # so the generator publishes a coherent triple, not just the rule key.
    return {
        "probe.net_benefit": net,
        "probe.inference_ns": 200_000.0,
        "probe.gain_ns": net + 200_000.0,
    }


def _build_p6(kernel):
    from repro.core.properties import fairness_liveness
    kernel.functions.register("sched.pick_next", _noop)
    kernel.functions.register_implementation("sched.cfs", _noop)
    return fairness_liveness()


def _signals_p6(rng, faulty):
    return {
        "sched.max_wait_ms": (240.0 + rng.uniform(-40.0, 40.0)) if faulty
        else (30.0 + rng.uniform(-20.0, 20.0)),
    }


_A4_SPEC = """
guardrail probe-deprioritize {
  trigger: { TIMER(start_time, 1000000000) },
  rule: { LOAD(probe.hog_wait_ms) <= 100.0 },
  action: { DEPRIORITIZE({hog}, {19}) }
}
"""


def _build_a4(kernel):
    from repro.kernel.sched import CpuScheduler
    sched = kernel.attach("sched", CpuScheduler(kernel))
    sched.spawn("hog", burst_ns=5 * MILLISECOND)
    sched.spawn("service", burst_ns=1 * MILLISECOND)
    return _A4_SPEC


def _signals_a4(rng, faulty):
    # The scheduler publishes its own sched.* keys; the probe watches a
    # dedicated wait signal so the generator never fights the subsystem.
    return {
        "probe.hog_wait_ms": (300.0 + rng.uniform(-50.0, 50.0)) if faulty
        else (40.0 + rng.uniform(-20.0, 20.0)),
    }


HOST_FAMILIES = {
    "P1": _Family("P1", "A3", "probe.input_psi_max", _build_p1, _signals_p1),
    "P2": _Family("P2", "A3", "probe.output_sensitivity", _build_p2,
                  _signals_p2),
    "P3": _Family("P3", "A2", "mm.quota", _build_p3, _signals_p3),
    "P4": _Family("P4", "A2", "cache.hit_rate", _build_p4, _signals_p4),
    "P5": _Family("P5", "A1", "probe.net_benefit", _build_p5, _signals_p5),
    "P6": _Family("P6", "A2", "sched.max_wait_ms", _build_p6, _signals_p6),
    "A4": _Family("P6", "A4", "probe.hog_wait_ms", _build_a4, _signals_a4),
}


def _drive_signals(kernel, family, regime, seed):
    """Schedule the episode's whole signal tape up front (deterministic)."""
    rng = random.Random(seed)
    fault_start_ns = int(FAULT_START_S * SECOND)
    ticks = (HOST_DURATION_S * SECOND) // _SIGNAL_PERIOD_NS
    for tick in range(int(ticks) + 1):
        at_ns = tick * _SIGNAL_PERIOD_NS
        faulty = regime == "faulty" and at_ns >= fault_start_ns
        values = family.signals(rng, faulty)
        for key, value in values.items():
            if key.startswith("__hook__"):
                kernel.engine.schedule_at(
                    at_ns, _fire_hook, kernel, key[len("__hook__"):], value)
            else:
                kernel.engine.schedule_at(at_ns, kernel.store.save, key,
                                          value)


def _fire_hook(kernel, name, payload):
    kernel.hooks.get(name).fire(**payload)


def run_host_episode(family_name, regime, seed):
    """Run one host episode; returns its deterministic outcome dict.

    Verdict rule (crisp, in labelling order): any rule violation during
    the run is a ``trip``; otherwise any inconclusive check (NaN/missing
    signal) is ``inconclusive``; otherwise ``allow``.
    """
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.kernel import Kernel

    if family_name not in HOST_FAMILIES:
        raise ValueError("unknown host episode family {!r}; known: {}".format(
            family_name, ", ".join(sorted(HOST_FAMILIES))))
    if regime not in HOST_REGIMES:
        raise ValueError("unknown regime {!r}; known: {}".format(
            regime, ", ".join(HOST_REGIMES)))
    family = HOST_FAMILIES[family_name]
    kernel = Kernel(seed=seed)
    spec = family.build(kernel)
    if regime == "blinded":
        plan = FaultPlan.from_flags(
            ("corrupt@{}:start={}".format(family.blind_key, FAULT_START_S),),
            seed=seed)
        FaultInjector(kernel, plan).install()
    _drive_signals(kernel, family, regime, seed)
    monitor = kernel.guardrails.load(spec, cooldown=10 * SECOND)
    kernel.run(until=HOST_DURATION_S * SECOND)

    if monitor.violation_count > 0:
        verdict = "trip"
    elif monitor.inconclusive_count > 0:
        verdict = "inconclusive"
    else:
        verdict = "allow"
    return {
        "verdict": verdict,
        "guardrail": monitor.name,
        "property": family.prop,
        "action": family.action_kind,
        "checks": monitor.check_count,
        "violations": monitor.violation_count,
        "inconclusive": monitor.inconclusive_count,
        "actions_dispatched": monitor.action_dispatch_count,
    }


# -- fleet episodes ----------------------------------------------------------

#: The gate axes, in evaluation order, with their measurement keys.
GATE_AXES = (
    ("violation", "violation_rate_delta", "max_violation_rate_delta"),
    ("inconclusive", "inconclusive_rate_delta", "max_inconclusive_rate_delta"),
    ("p95", "p95_ratio", "max_p95_ratio"),
)


def permissive_gate():
    """A GateConfig that never trips — used to record all-stage data."""
    from repro.fleet.rollout import GateConfig
    return GateConfig(max_violation_rate_delta=math.inf,
                      max_inconclusive_rate_delta=math.inf,
                      max_p95_ratio=math.inf)


def gate_trip_axes(gate, measurements):
    """Which axes of ``gate`` trip on one stage's recorded measurements.

    Mirrors :meth:`GateConfig.evaluate` exactly (tested against it):
    below the ``min_checks`` sample floor nothing trips, and a missing
    p95 ratio (dark baseline) cannot trip the latency axis.
    """
    if measurements["checks"] < gate.min_checks:
        return []
    axes = []
    for axis, measurement_key, threshold_attr in GATE_AXES:
        value = measurements[measurement_key]
        if value is not None and value > getattr(gate, threshold_attr):
            axes.append(axis)
    return axes


def fleet_verdict(gate, stages):
    """Offline verdict of a recorded fleet episode under ``gate``.

    ``trip`` at the first stage with a tripping axis (the real rollout
    would have halted there), else ``allow``.
    """
    for stage in stages:
        axes = gate_trip_axes(gate, stage["measurements"])
        if axes:
            return {"verdict": "trip", "tripped_stage": stage["stage"],
                    "tripped_axes": axes}
    return {"verdict": "allow", "tripped_stage": None, "tripped_axes": []}


def run_fleet_episode(hosts, seed, fault_hosts, fault_kind, quick, gate=None,
                      jobs=1):
    """Run one recorded fleet rollout episode; verdict computed offline."""
    from repro.fleet.rollout import GateConfig
    from repro.fleet.scenario import run_fleet_rollout

    gate = gate or GateConfig()
    report = run_fleet_rollout(hosts=hosts, seed=seed,
                               fault_hosts=fault_hosts,
                               fault_kind=fault_kind if fault_hosts else
                               "corrupt",
                               quick=quick, jobs=jobs, gate=permissive_gate())
    stages = [{"stage": entry["stage"]["label"],
               "measurements": entry["gate"]["measurements"]}
              for entry in report["stages"]]
    outcome = fleet_verdict(gate, stages)
    outcome.update({
        "guardrail": report["versions"]["new"]["name"],
        "property": None,
        "action": None,
        "stages": stages,
        "gate": gate.to_dict(),
    })
    return outcome


__all__ = [
    "EXPECTED_BY_REGIME",
    "FAULT_START_S",
    "GATE_AXES",
    "HOST_DURATION_S",
    "HOST_FAMILIES",
    "HOST_REGIMES",
    "fleet_verdict",
    "gate_trip_axes",
    "permissive_gate",
    "run_fleet_episode",
    "run_host_episode",
]

"""Execute the labelled dataset and assemble the eval results document.

Episodes run through the shared :mod:`repro.bench.pool` process pool —
one worker process per episode, crash/timeout retried once — and results
merge **sorted by episode id**, so the document is byte-identical across
reruns and across ``--jobs`` values: nothing in it depends on wall time,
scheduling order, or worker count.  (Operational noise — attempts, wall
times — goes to the progress stream, never into the document.)
"""

import time
import traceback

from repro.bench.pool import DEFAULT_TIMEOUT_S, PoolTask, run_pool
from repro.eval.dataset import load_dataset
from repro.eval.score import score_results

#: Document format version, bumped with the result schema.
DOCUMENT_SCHEMA = "repro-eval/v1"

#: Relative cost estimates for longest-first pool packing.
_HOST_COST = 0.1


def _fleet_cost(episode):
    scale = 1.0 if episode["tier"] == "quick" else 4.0
    return scale * episode["hosts"] / 4.0


def _scenario_cost(episode):
    return 0.3 if episode["tier"] == "quick" else 3.0


def _host_worker(family, regime, seed, conn):
    started = time.monotonic()
    try:
        from repro.eval.episodes import run_host_episode
        outcome = run_host_episode(family, regime, seed)
        conn.send(("ok", {"result": outcome,
                          "wall_time_s": time.monotonic() - started}))
    except Exception:
        conn.send(("error", {"error": traceback.format_exc(limit=20),
                             "wall_time_s": time.monotonic() - started}))


def _fleet_worker(hosts, seed, fault_hosts, fault_kind, quick, gate_dict,
                  conn):
    started = time.monotonic()
    try:
        from repro.eval.episodes import run_fleet_episode
        from repro.fleet.rollout import GateConfig
        outcome = run_fleet_episode(hosts, seed, fault_hosts, fault_kind,
                                    quick, gate=GateConfig(**gate_dict))
        conn.send(("ok", {"result": outcome,
                          "wall_time_s": time.monotonic() - started}))
    except Exception:
        conn.send(("error", {"error": traceback.format_exc(limit=20),
                             "wall_time_s": time.monotonic() - started}))


def _scenario_episode_worker(name, conn):
    started = time.monotonic()
    try:
        from repro.scenarios import get_scenario, run_scenario
        outcome = run_scenario(get_scenario(name))
        conn.send(("ok", {"result": outcome,
                          "wall_time_s": time.monotonic() - started}))
    except Exception:
        conn.send(("error", {"error": traceback.format_exc(limit=20),
                             "wall_time_s": time.monotonic() - started}))


def _task_for(episode, gate):
    if episode["kind"] == "host":
        return PoolTask(
            episode["id"], _host_worker,
            (episode["family"], episode["regime"], episode["seed"]),
            cost=_HOST_COST)
    if episode["kind"] == "scenario":
        return PoolTask(
            episode["id"], _scenario_episode_worker, (episode["scenario"],),
            cost=_scenario_cost(episode))
    return PoolTask(
        episode["id"], _fleet_worker,
        (episode["hosts"], episode["seed"], episode["fault_hosts"],
         episode["fault_kind"], episode["tier"] == "quick", gate.to_dict()),
        cost=_fleet_cost(episode))


def select_episodes(episodes, tier="full", ids=None):
    """The subset of dataset episodes one invocation executes.

    ``tier="quick"`` keeps only quick-tier episodes (the CI smoke set);
    ``tier="full"`` keeps everything.  ``ids`` further restricts to an
    explicit set and raises ``ValueError`` on unknown ids so a typo fails
    loudly instead of silently shrinking coverage.
    """
    if tier not in ("quick", "full"):
        raise ValueError("unknown tier {!r}".format(tier))
    selected = [episode for episode in episodes
                if tier == "full" or episode["tier"] == "quick"]
    if ids is not None:
        wanted = set(ids)
        unknown = wanted - {episode["id"] for episode in selected}
        if unknown:
            raise ValueError("unknown episode id(s): {}".format(
                ", ".join(sorted(unknown))))
        selected = [episode for episode in selected
                    if episode["id"] in wanted]
    return selected


def _base_result(episode):
    result = {"id": episode["id"], "kind": episode["kind"],
              "tier": episode["tier"], "expected": episode["expected"]}
    if episode["kind"] == "host":
        result.update({"family": episode["family"],
                       "regime": episode["regime"],
                       "seed": episode["seed"]})
    elif episode["kind"] == "scenario":
        result["scenario"] = episode["scenario"]
    else:
        result.update({"hosts": episode["hosts"], "seed": episode["seed"],
                       "fault_hosts": episode["fault_hosts"],
                       "fault_kind": episode["fault_kind"]})
    return result


def _merge_outcome(episode, outcome, gate):
    from repro.eval.episodes import gate_trip_axes

    result = _base_result(episode)
    if outcome["status"] != "ok":
        result.update({
            "verdict": "error",
            "correct": False,
            "guardrail": None,
            "error": (outcome["payload"] or {}).get("error",
                                                    outcome["status"]),
        })
        return result
    payload = outcome["payload"]["result"]
    if episode["kind"] == "scenario":
        # ``run_scenario`` already collapses per-guardrail verdicts onto
        # the eval ladder (any trip -> trip, else any inconclusive ...).
        result.update({
            "verdict": payload["overall"],
            "correct": payload["overall"] == episode["expected"],
            "guardrail": "+".join(sorted(payload["guardrails"])),
            "verdicts": payload["verdicts"],
            "registry_matched": payload["matched"],
        })
        return result
    result["verdict"] = payload["verdict"]
    result["correct"] = payload["verdict"] == episode["expected"]
    result["guardrail"] = payload["guardrail"]
    if episode["kind"] == "host":
        result.update({
            "property": payload["property"],
            "action": payload["action"],
            "checks": payload["checks"],
            "violations": payload["violations"],
            "inconclusive": payload["inconclusive"],
            "actions_dispatched": payload["actions_dispatched"],
        })
    else:
        result.update({
            "tripped_stage": payload["tripped_stage"],
            "tripped_axes": payload["tripped_axes"],
            "stages": payload["stages"],
            "stage_verdicts": [
                {"stage": stage["stage"],
                 "tripped_axes": gate_trip_axes(gate, stage["measurements"])}
                for stage in payload["stages"]
            ],
        })
    return result


def run_episode(episode, gate=None):
    """Run one dataset episode synchronously, without the process pool.

    Same merged-result shape as one entry of ``run_eval()["episodes"]``.
    For callers that already live inside a pool worker (benchmarks) —
    pool children are daemonic and cannot spawn a nested pool.
    """
    from repro.eval.episodes import run_fleet_episode, run_host_episode
    from repro.fleet.rollout import GateConfig

    gate = gate or GateConfig()
    if episode["kind"] == "host":
        payload = run_host_episode(episode["family"], episode["regime"],
                                   episode["seed"])
    elif episode["kind"] == "scenario":
        from repro.scenarios import get_scenario, run_scenario
        payload = run_scenario(get_scenario(episode["scenario"]))
    else:
        payload = run_fleet_episode(
            episode["hosts"], episode["seed"], episode["fault_hosts"],
            episode["fault_kind"], episode["tier"] == "quick", gate=gate)
    outcome = {"id": episode["id"], "status": "ok",
               "payload": {"result": payload}}
    return _merge_outcome(episode, outcome, gate)


def run_eval(dataset_path=None, tier="full", jobs=1, gate=None, ids=None,
             progress=None, timeout_s=DEFAULT_TIMEOUT_S):
    """Run the (selected) dataset; returns the deterministic document.

    ``gate`` is the :class:`~repro.fleet.rollout.GateConfig` under
    evaluation for fleet episodes (default: the calibrated defaults).
    """
    from repro.fleet.rollout import GateConfig

    gate = gate or GateConfig()
    header, episodes = load_dataset(dataset_path)
    selected = select_episodes(episodes, tier=tier, ids=ids)
    if not selected:
        raise ValueError("selection matched no episodes")
    by_id = {episode["id"]: episode for episode in selected}
    tasks = [_task_for(episode, gate) for episode in selected]
    tasks.sort(key=lambda task: (-task.cost, task.id))
    outcomes = run_pool(tasks, jobs=jobs, timeout_s=timeout_s,
                        progress=progress)
    results = [_merge_outcome(by_id[outcome["id"]], outcome, gate)
               for outcome in outcomes]  # run_pool sorts by id
    return {
        "schema": DOCUMENT_SCHEMA,
        "dataset": {
            "schema_version": header["schema_version"],
            "dataset_version": header["dataset_version"],
        },
        "tier": tier,
        "gate": gate.to_dict(),
        "episodes": results,
        "scores": score_results(results),
    }


__all__ = ["DOCUMENT_SCHEMA", "run_episode", "run_eval", "select_episodes"]

"""Append-only sqlite time-series store for fleet results.

One store file holds any number of *runs* (rollouts or steady-state
soaks).  Per run the store keeps:

- ``rounds``        — one row per committed lockstep round: fleet-summed
  counters (cheap, kept forever);
- ``host_digests``  — the raw per-host :class:`~repro.fleet.aggregate.
  HostDigest` rows, counters in columns and sketch state as JSON, exact
  under :meth:`HostDigest.to_row`/``from_row``;
- ``host_buckets``  — time-bucketed downsampled digests: when a
  :class:`RetentionPolicy` is set, raw rows older than the retention
  horizon are *folded* (counters add, sketches merge) into one row per
  ``(host, bucket)`` and deleted, so disk stays bounded for soaks of
  millions of I/Os while coarse history remains queryable;
- ``events``        — the rollout control-plane timeline, entries stored
  verbatim as JSON (floats survive repr-exactly);
- ``phases``        — baseline / stage-bake / rollback-settle round
  intervals, the index that lets queries re-aggregate any cohort;
- ``gates``         — every health-gate evaluation with its measurements;
- ``proposals``     — every autopilot proposal (tightened threshold or
  synthesized metric) with its machine-readable provenance and final
  verdict (``proposed`` / ``recorded`` / ``deployed`` / ``rolled_back``),
  linked to the deploy run that carried it — the audit trail behind
  ``grctl query autopilot``.

Writes are transactional per round: ``commit_round`` inserts the round's
digests, trailing control-plane records, and the checkpoint watermark in
one transaction, so a crash can never leave a half-committed round — the
service resumes from ``committed_round`` and replays forward.  The file
runs in WAL mode; readers (queries, dashboards) can watch a store while a
service writes it.
"""

import json
import sqlite3

from repro.fleet.aggregate import HostDigest

#: Bump on any table/column change; stores created by other versions are
#: refused rather than silently misread.  v2 added the ``proposals`` table.
SCHEMA_VERSION = 2

_COUNTERS = HostDigest.COUNTER_FIELDS  # checks .. model_submits

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
  key   TEXT PRIMARY KEY,
  value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
  run_id          INTEGER PRIMARY KEY,
  kind            TEXT NOT NULL,
  status          TEXT NOT NULL,
  scenario        TEXT NOT NULL,
  plan            TEXT,
  versions        TEXT,
  round_ns        INTEGER NOT NULL,
  hosts           INTEGER NOT NULL,
  total_rounds    INTEGER,
  committed_round INTEGER NOT NULL DEFAULT -1,
  final_rounds    INTEGER,
  rolled_back_at  TEXT
);
CREATE TABLE IF NOT EXISTS rounds (
  run_id        INTEGER NOT NULL,
  round_index   INTEGER NOT NULL,
  time_ns       INTEGER NOT NULL,
  hosts         INTEGER NOT NULL,
  checks        INTEGER NOT NULL,
  violations    INTEGER NOT NULL,
  actions       INTEGER NOT NULL,
  inconclusive  INTEGER NOT NULL,
  completed_ios INTEGER NOT NULL,
  false_submits INTEGER NOT NULL,
  model_submits INTEGER NOT NULL,
  PRIMARY KEY (run_id, round_index)
);
CREATE TABLE IF NOT EXISTS host_digests (
  run_id        INTEGER NOT NULL,
  round_index   INTEGER NOT NULL,
  host_id       INTEGER NOT NULL,
  time_ns       INTEGER NOT NULL,
  version       INTEGER NOT NULL,
  checks        INTEGER NOT NULL,
  violations    INTEGER NOT NULL,
  actions       INTEGER NOT NULL,
  inconclusive  INTEGER NOT NULL,
  completed_ios INTEGER NOT NULL,
  false_submits INTEGER NOT NULL,
  model_submits INTEGER NOT NULL,
  sketches      TEXT NOT NULL,
  PRIMARY KEY (run_id, round_index, host_id)
);
CREATE TABLE IF NOT EXISTS host_buckets (
  run_id        INTEGER NOT NULL,
  bucket        INTEGER NOT NULL,
  host_id       INTEGER NOT NULL,
  start_round   INTEGER NOT NULL,
  end_round     INTEGER NOT NULL,
  rounds        INTEGER NOT NULL,
  time_ns       INTEGER NOT NULL,
  version       INTEGER NOT NULL,
  checks        INTEGER NOT NULL,
  violations    INTEGER NOT NULL,
  actions       INTEGER NOT NULL,
  inconclusive  INTEGER NOT NULL,
  completed_ios INTEGER NOT NULL,
  false_submits INTEGER NOT NULL,
  model_submits INTEGER NOT NULL,
  sketches      TEXT NOT NULL,
  PRIMARY KEY (run_id, bucket, host_id)
);
CREATE TABLE IF NOT EXISTS events (
  run_id      INTEGER NOT NULL,
  seq         INTEGER NOT NULL,
  round_index INTEGER NOT NULL,
  time_s      REAL NOT NULL,
  event       TEXT NOT NULL,
  entry       TEXT NOT NULL,
  PRIMARY KEY (run_id, seq)
);
CREATE TABLE IF NOT EXISTS phases (
  run_id       INTEGER NOT NULL,
  start_round  INTEGER NOT NULL,
  kind         TEXT NOT NULL,
  label        TEXT NOT NULL,
  target_hosts INTEGER NOT NULL,
  end_round    INTEGER NOT NULL,
  PRIMARY KEY (run_id, start_round)
);
CREATE TABLE IF NOT EXISTS gates (
  run_id       INTEGER NOT NULL,
  stage        TEXT NOT NULL,
  round_index  INTEGER NOT NULL,
  passed       INTEGER NOT NULL,
  reasons      TEXT NOT NULL,
  measurements TEXT NOT NULL,
  PRIMARY KEY (run_id, stage, round_index)
);
CREATE TABLE IF NOT EXISTS proposals (
  proposal_id INTEGER PRIMARY KEY,
  kind        TEXT NOT NULL,
  guardrail   TEXT NOT NULL,
  version     INTEGER NOT NULL,
  spec        TEXT NOT NULL,
  provenance  TEXT NOT NULL,
  verdict     TEXT NOT NULL,
  deploy_run  INTEGER
);
"""


class StoreError(Exception):
    """Schema mismatch, broken round ordering, or an unreadable store."""


def digest_from_bucket_row(row):
    """A :class:`HostDigest` from a ``host_buckets`` row.

    Bucket rows carry ``start_round``/``end_round`` instead of a single
    ``round_index``; the rebuilt digest reports the bucket's first round.
    """
    mapped = {key: row[key] for key in row.keys()}
    mapped["round_index"] = row["start_round"]
    return HostDigest.from_row(mapped)


class RetentionPolicy:
    """How long raw per-host digests stay raw.

    ``raw_rounds`` is the retention horizon: after committing round ``R``,
    raw rows with ``round_index <= R - raw_rounds`` are folded into their
    time bucket and deleted (``None`` disables retention entirely — every
    round stays raw, which is what report regeneration needs).
    ``bucket_rounds`` is the downsampling grain: bucket ``k`` covers
    rounds ``[k*bucket_rounds, (k+1)*bucket_rounds)``.  A bucket can be
    folded incrementally — first the part of it that crossed the horizon,
    later the rest — and the folds merge exactly for counters and
    histogram mass (float sketch merges are tolerance-bounded, same as
    cross-host merges).
    """

    __slots__ = ("raw_rounds", "bucket_rounds")

    def __init__(self, raw_rounds=None, bucket_rounds=8):
        if raw_rounds is not None and raw_rounds < 1:
            raise ValueError(
                "raw_rounds must be >= 1 or None, got {}".format(raw_rounds))
        if bucket_rounds < 1:
            raise ValueError(
                "bucket_rounds must be >= 1, got {}".format(bucket_rounds))
        self.raw_rounds = raw_rounds
        self.bucket_rounds = int(bucket_rounds)


class ResultsStore:
    """One sqlite results store (see the module docstring for the schema)."""

    def __init__(self, path, retention=None):
        self.path = path
        self.retention = retention or RetentionPolicy()
        try:
            self._db = sqlite3.connect(path)
        except sqlite3.Error as exc:
            raise StoreError("cannot open store {!r}: {}".format(path, exc))
        self._db.row_factory = sqlite3.Row
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._init_schema()

    def _init_schema(self):
        with self._db:
            self._db.executescript(_SCHEMA)
            row = self._db.execute(
                "SELECT value FROM meta WHERE key='schema_version'").fetchone()
            if row is None:
                self._db.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)))
            elif int(row["value"]) != SCHEMA_VERSION:
                raise StoreError(
                    "store {!r} has schema v{}, this build speaks v{}".format(
                        self.path, row["value"], SCHEMA_VERSION))

    def close(self):
        self._db.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- runs ---------------------------------------------------------------

    def begin_run(self, kind, scenario, round_ns, hosts, total_rounds=None,
                  plan=None, versions=None):
        """Open a new run in ``running`` state; returns its id."""
        with self._db:
            cursor = self._db.execute(
                "INSERT INTO runs (kind, status, scenario, plan, versions,"
                " round_ns, hosts, total_rounds) VALUES (?,?,?,?,?,?,?,?)",
                (kind, "running", json.dumps(scenario, sort_keys=True),
                 None if plan is None else json.dumps(plan, sort_keys=True),
                 None if versions is None
                 else json.dumps(versions, sort_keys=True),
                 int(round_ns), int(hosts), total_rounds))
        return cursor.lastrowid

    def run(self, run_id):
        """The run row as a dict (JSON columns decoded); StoreError if absent."""
        row = self._db.execute("SELECT * FROM runs WHERE run_id=?",
                               (run_id,)).fetchone()
        if row is None:
            raise StoreError("no run {} in store {!r}".format(
                run_id, self.path))
        run = dict(row)
        run["scenario"] = json.loads(run["scenario"])
        for key in ("plan", "versions"):
            if run[key] is not None:
                run[key] = json.loads(run[key])
        return run

    def runs(self):
        rows = self._db.execute(
            "SELECT run_id FROM runs ORDER BY run_id").fetchall()
        return [self.run(row["run_id"]) for row in rows]

    def latest_run_id(self):
        row = self._db.execute("SELECT MAX(run_id) AS m FROM runs").fetchone()
        return row["m"]

    # -- per-round ingest ---------------------------------------------------

    def commit_round(self, run_id, round_index, time_ns, digests,
                     events=(), phases=(), gates=()):
        """Commit one round atomically; returns retention fold statistics.

        ``round_index`` must be exactly ``committed_round + 1`` — the store
        accepts no gaps and no duplicates, which is what makes the
        watermark a safe resume point.  ``events``/``phases``/``gates`` are
        the control-plane records that accrued since the previous commit
        (they describe earlier rounds; replays rewrite them identically).
        """
        run = self.run(run_id)
        if round_index != run["committed_round"] + 1:
            raise StoreError(
                "round {} out of order: store has committed through {}"
                .format(round_index, run["committed_round"]))
        folded = {"rounds_folded": 0, "rows_deleted": 0}
        with self._db:
            self._insert_digests(run_id, round_index, time_ns, digests)
            self._insert_control(run_id, events, phases, gates)
            self._db.execute(
                "UPDATE runs SET committed_round=? WHERE run_id=?",
                (round_index, run_id))
            if self.retention.raw_rounds is not None:
                folded = self._apply_retention(run_id, round_index)
        return folded

    def _insert_digests(self, run_id, round_index, time_ns, digests):
        rows = []
        fleet = {field: 0 for field in _COUNTERS}
        for digest in digests:
            row = digest.to_row()
            rows.append((run_id, round_index, row["host_id"], row["time_ns"],
                         row["version"])
                        + tuple(row[field] for field in _COUNTERS)
                        + (row["sketches"],))
            for field in _COUNTERS:
                fleet[field] += row[field]
        self._db.executemany(
            "INSERT INTO host_digests VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?)",
            rows)
        self._db.execute(
            "INSERT INTO rounds VALUES (?,?,?,?,?,?,?,?,?,?,?)",
            (run_id, round_index, time_ns, len(rows))
            + tuple(fleet[field] for field in _COUNTERS))

    def _insert_control(self, run_id, events, phases, gates):
        for seq, entry in events:
            self._db.execute(
                "INSERT INTO events VALUES (?,?,?,?,?,?)",
                (run_id, seq, entry["round"], entry["time_s"],
                 entry["event"], json.dumps(entry, sort_keys=True)))
        for phase in phases:
            self._db.execute(
                "INSERT OR REPLACE INTO phases VALUES (?,?,?,?,?,?)",
                (run_id, phase["start_round"], phase["kind"], phase["label"],
                 phase["target_hosts"], phase["end_round"]))
        for stage, round_index, result in gates:
            self._db.execute(
                "INSERT OR REPLACE INTO gates VALUES (?,?,?,?,?,?)",
                (run_id, stage, round_index, int(result["passed"]),
                 json.dumps(result["reasons"], sort_keys=True),
                 json.dumps(result["measurements"], sort_keys=True)))

    def finalize_run(self, run_id, status, rolled_back_at=None,
                     final_rounds=None, events=(), phases=(), gates=()):
        """Close a run: trailing control-plane records + final status."""
        with self._db:
            self._insert_control(run_id, events, phases, gates)
            self._db.execute(
                "UPDATE runs SET status=?, rolled_back_at=?, final_rounds=?"
                " WHERE run_id=?",
                (status, rolled_back_at, final_rounds, run_id))

    def max_event_seq(self, run_id):
        row = self._db.execute(
            "SELECT MAX(seq) AS m FROM events WHERE run_id=?",
            (run_id,)).fetchone()
        return -1 if row["m"] is None else row["m"]

    # -- autopilot proposals ------------------------------------------------

    def record_proposal(self, kind, guardrail, version, spec, provenance,
                        verdict="proposed"):
        """Persist one autopilot proposal; returns its id.

        ``provenance`` is the machine-readable why (observed band, sample
        count, prior threshold ...), stored as canonical JSON.
        """
        with self._db:
            cursor = self._db.execute(
                "INSERT INTO proposals (kind, guardrail, version, spec,"
                " provenance, verdict, deploy_run) VALUES (?,?,?,?,?,?,?)",
                (kind, guardrail, int(version), spec,
                 json.dumps(provenance, sort_keys=True), verdict, None))
        return cursor.lastrowid

    def set_proposal_verdict(self, proposal_id, verdict, deploy_run=None):
        """Record how a proposal ended up (``deployed`` / ``rolled_back``)."""
        with self._db:
            cursor = self._db.execute(
                "UPDATE proposals SET verdict=?, deploy_run=?"
                " WHERE proposal_id=?",
                (verdict, deploy_run, proposal_id))
        if cursor.rowcount == 0:
            raise StoreError("no proposal {} in store {!r}".format(
                proposal_id, self.path))

    def proposal_rows(self):
        return self._db.execute(
            "SELECT * FROM proposals ORDER BY proposal_id").fetchall()

    # -- retention / downsampling ------------------------------------------

    def _apply_retention(self, run_id, committed_round):
        """Fold raw rows past the horizon into buckets (runs in-transaction).

        The horizon keeps the most recent ``raw_rounds`` rounds raw: after
        committing round ``R``, rounds ``<= R - raw_rounds`` expire.  Folds
        walk expired rounds in ascending order per host, merging each into
        its bucket row; a bucket that already exists (an earlier partial
        fold) is loaded, merged, and rewritten.
        """
        policy = self.retention
        cutoff = committed_round - policy.raw_rounds  # expired: <= cutoff
        expired = self._db.execute(
            "SELECT * FROM host_digests WHERE run_id=? AND round_index<=?"
            " ORDER BY host_id, round_index", (run_id, cutoff)).fetchall()
        if not expired:
            return {"rounds_folded": 0, "rows_deleted": 0}
        buckets = {}
        for row in expired:
            bucket = row["round_index"] // policy.bucket_rounds
            key = (bucket, row["host_id"])
            digest = HostDigest.from_row(row)
            if key not in buckets:
                existing = self._db.execute(
                    "SELECT * FROM host_buckets WHERE run_id=? AND bucket=?"
                    " AND host_id=?", (run_id, bucket, row["host_id"]),
                ).fetchone()
                if existing is None:
                    buckets[key] = {
                        "digest": digest,
                        "start_round": row["round_index"],
                        "end_round": row["round_index"] + 1,
                        "rounds": 1,
                    }
                    continue
                buckets[key] = {
                    "digest": digest_from_bucket_row(existing),
                    "start_round": existing["start_round"],
                    "end_round": existing["end_round"],
                    "rounds": existing["rounds"],
                }
            state = buckets[key]
            state["digest"].merge_round(digest)
            state["start_round"] = min(state["start_round"],
                                       row["round_index"])
            state["end_round"] = max(state["end_round"],
                                     row["round_index"] + 1)
            state["rounds"] += 1
        for (bucket, host_id), state in sorted(buckets.items()):
            row = state["digest"].to_row()
            self._db.execute(
                "INSERT OR REPLACE INTO host_buckets VALUES"
                " (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                (run_id, bucket, host_id, state["start_round"],
                 state["end_round"], state["rounds"], row["time_ns"],
                 row["version"])
                + tuple(row[field] for field in _COUNTERS)
                + (row["sketches"],))
        self._db.execute(
            "DELETE FROM host_digests WHERE run_id=? AND round_index<=?",
            (run_id, cutoff))
        return {"rounds_folded": len(buckets), "rows_deleted": len(expired)}

    # -- reads --------------------------------------------------------------

    def round_rows(self, run_id, start_round=0, end_round=None):
        """``rounds`` rows in ``[start_round, end_round)``, ascending."""
        if end_round is None:
            end_round = 1 << 62
        return self._db.execute(
            "SELECT * FROM rounds WHERE run_id=? AND round_index>=? AND"
            " round_index<? ORDER BY round_index",
            (run_id, start_round, end_round)).fetchall()

    def digest_rows(self, run_id, start_round=0, end_round=None):
        """Raw host-digest rows in range, ordered (round, host) ascending."""
        if end_round is None:
            end_round = 1 << 62
        return self._db.execute(
            "SELECT * FROM host_digests WHERE run_id=? AND round_index>=?"
            " AND round_index<? ORDER BY round_index, host_id",
            (run_id, start_round, end_round)).fetchall()

    def bucket_rows(self, run_id, start_round=0, end_round=None):
        """Bucket rows overlapping ``[start_round, end_round)``, ascending."""
        if end_round is None:
            end_round = 1 << 62
        return self._db.execute(
            "SELECT * FROM host_buckets WHERE run_id=? AND end_round>? AND"
            " start_round<? ORDER BY bucket, host_id",
            (run_id, start_round, end_round)).fetchall()

    def event_rows(self, run_id):
        return self._db.execute(
            "SELECT * FROM events WHERE run_id=? ORDER BY seq",
            (run_id,)).fetchall()

    def phase_rows(self, run_id):
        return self._db.execute(
            "SELECT * FROM phases WHERE run_id=? ORDER BY start_round",
            (run_id,)).fetchall()

    def gate_rows(self, run_id):
        return self._db.execute(
            "SELECT * FROM gates WHERE run_id=? ORDER BY round_index",
            (run_id,)).fetchall()

    def raw_round_indexes(self, run_id):
        """Round indexes that still have raw digests (ascending)."""
        rows = self._db.execute(
            "SELECT DISTINCT round_index FROM host_digests WHERE run_id=?"
            " ORDER BY round_index", (run_id,)).fetchall()
        return [row["round_index"] for row in rows]


__all__ = [
    "ResultsStore",
    "RetentionPolicy",
    "SCHEMA_VERSION",
    "StoreError",
    "digest_from_bucket_row",
]

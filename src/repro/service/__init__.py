"""Continuous-operation fleet service: store, loop, queries, dashboard.

``repro.fleet`` runs one rollout and prints one report.  This package is
what you run when the fleet never stops: a service loop that streams
every lockstep round's host digests into an append-only sqlite store
(``grctl serve``), typed queries answerable while the run is still in
flight (``grctl query``), and a terminal/HTML fleet-health dashboard
rendered from those queries alone (``grctl dash``).

The store's contract is exactness: host digests round-trip bit-for-bit
(:meth:`~repro.fleet.aggregate.HostDigest.to_row`/``from_row``), so a
rollout report regenerated from the store is byte-identical to the live
``grctl fleet --json`` report for the same seed.  Retention folds old raw
rounds into time buckets, keeping disk bounded for arbitrarily long soaks
while coarse history stays queryable.
"""

from repro.service.loop import (
    ServiceError,
    StoreObserver,
    resume,
    serve_rollout,
    serve_soak,
    summary_json,
)
from repro.service.store import (
    ResultsStore,
    RetentionPolicy,
    SCHEMA_VERSION,
    StoreError,
)

__all__ = [
    "ResultsStore",
    "RetentionPolicy",
    "SCHEMA_VERSION",
    "ServiceError",
    "StoreError",
    "StoreObserver",
    "resume",
    "serve_rollout",
    "serve_soak",
    "summary_json",
]

"""Fleet-health dashboard rendered from store queries alone.

Two renderers, one data path: :func:`render_terminal` prints a
sparkline-and-table summary for an interactive shell, and
:func:`render_html` emits a self-contained static HTML page (inline SVG,
no external assets, no scripts beyond native ``<title>`` hover hints).
Both consume only :mod:`repro.service.query` results — never the live
fleet — so they work mid-run against a store another process is writing,
and they are deterministic for a given store state (no wall-clock
timestamps), which is what lets tests byte-compare rendered output.

Charts follow one-axis discipline: violation rate and latency are
different scales, so each gets its own panel instead of a dual-axis
chart.  Every plotted value also appears in a table, so color is never
the only way to read a number.
"""

from repro.service.query import (
    gate_margins,
    latency_trend,
    resolve_run,
    rollback_timeline,
    run_status,
    stage_rates,
)

#: Eight-level sparkline glyphs, lowest to highest.
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values):
    """A unicode sparkline; ``None`` values render as spaces."""
    present = [v for v in values if v is not None]
    if not present:
        return " " * len(values)
    lo, hi = min(present), max(present)
    span = hi - lo
    chars = []
    for value in values:
        if value is None:
            chars.append(" ")
        elif span <= 0:
            chars.append(SPARK_GLYPHS[0])
        else:
            level = int((value - lo) / span * (len(SPARK_GLYPHS) - 1))
            chars.append(SPARK_GLYPHS[level])
    return "".join(chars)


def _fmt_rate(value):
    return "{:.3f}".format(value)


def _fmt_us(value):
    return "n/a" if value is None else "{:.0f}us".format(value)


def _fmt_margin(value):
    if value is None:
        return "n/a"
    return "{:+.3f}".format(value)


def _phase_points(points, start_round, end_round):
    return [p for p in points
            if p["rounds"][0] >= start_round and p["rounds"][1] <= end_round]


def gather(store, run_id=None):
    """Everything both renderers need, from queries alone."""
    run = resolve_run(store, run_id)
    run_id = run["run_id"]
    return {
        "status": run_status(store, run_id),
        "stages": stage_rates(store, run_id),
        "trend": latency_trend(store, run_id),
        "gates": gate_margins(store, run_id),
        "rollbacks": rollback_timeline(store, run_id),
    }


# -- terminal ---------------------------------------------------------------


def render_terminal(store, run_id=None):
    """The fleet-health summary as plain text (deterministic)."""
    data = gather(store, run_id)
    status = data["status"]
    points = data["trend"]["points"]
    lines = []
    lines.append("run {} [{}]  {}  {} host(s), round {}{}  t={:.0f}s".format(
        status["run"], status["kind"], status["status"], status["hosts"],
        status["committed_round"],
        "/{}".format(status["total_rounds"] - 1)
        if status["total_rounds"] else "",
        status["time_s"]))
    if status["phase"] is not None:
        lines.append("phase: {} {!r} ({} host(s))".format(
            status["phase"]["kind"], status["phase"]["label"],
            status["phase"]["target_hosts"]))
    lines.append("fleet: violation_rate={}/host-s  inconclusive_rate={}"
                 "/host-s  ios={}".format(
                     _fmt_rate(status["violation_rate"]),
                     _fmt_rate(status["inconclusive_rate"]),
                     status["totals"]["completed_ios"]))
    lines.append("")

    phases = data["stages"]["phases"]
    if phases:
        lines.append("{:<10} {:<10} {:>7} {:>9} {:<14} {:>9} {:<14}".format(
            "phase", "label", "rounds", "viol/h-s", "", "p95", ""))
        for phase in phases:
            phase_pts = _phase_points(points, *phase["rounds"])
            viol_spark = sparkline(
                [p["violation_rate"] for p in phase_pts])
            p95_spark = sparkline([p["p95_us"] for p in phase_pts])
            lines.append(
                "{:<10} {:<10} {:>3}-{:<3} {:>9} {:<14} {:>9} {:<14}".format(
                    phase["kind"], phase["label"], phase["rounds"][0],
                    phase["rounds"][1] - 1,
                    _fmt_rate(phase["violation_rate"]), viol_spark,
                    _fmt_us(phase["p95_us"]), p95_spark))
        lines.append("")
    else:
        viol_spark = sparkline([p["violation_rate"] for p in points])
        p95_spark = sparkline([p["p95_us"] for p in points])
        lines.append("violation_rate  {}".format(viol_spark))
        lines.append("p95             {}".format(p95_spark))
        lines.append("")

    gates = data["gates"]["gates"]
    if gates:
        lines.append("{:<10} {:>5} {:<6} {:>10} {:>10} {:>10}".format(
            "gate", "round", "pass", "viol-m", "inconc-m", "p95-m"))
        for gate in gates:
            margins = gate["margins"]
            lines.append("{:<10} {:>5} {:<6} {:>10} {:>10} {:>10}".format(
                gate["stage"], gate["round"],
                "PASS" if gate["passed"] else "TRIP",
                _fmt_margin(margins.get("violation_rate_delta")),
                _fmt_margin(margins.get("inconclusive_rate_delta")),
                _fmt_margin(margins.get("p95_ratio"))))
            if not gate["passed"]:
                for reason in gate["reasons"]:
                    lines.append("           {}".format(reason))
        lines.append("")

    events = data["rollbacks"]["events"]
    if events:
        lines.append("rollback timeline:")
        for entry in events:
            detail = {k: v for k, v in entry.items()
                      if k not in ("round", "time_s", "event")}
            lines.append("  t={:>6.1f}s  {:<16}{}".format(
                entry["time_s"], entry["event"],
                "  " + ", ".join("{}={}".format(k, detail[k])
                                 for k in sorted(detail)) if detail else ""))
    elif status["kind"] == "rollout":
        lines.append("rollback timeline: <clean — no gate tripped>")
    return "\n".join(lines) + "\n"


# -- static HTML ------------------------------------------------------------

_CSS = """\
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
  --good: #0ca30c; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --ring: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
    --good: #0ca30c; --critical: #d03b3b;
  }
}
* { box-sizing: border-box; }
body { margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 18px; margin: 0 0 4px; }
h2 { font-size: 14px; margin: 24px 0 8px; color: var(--ink-2); }
.sub { color: var(--ink-2); margin: 0 0 16px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; }
.tile { background: var(--surface); border: 1px solid var(--ring);
  border-radius: 8px; padding: 12px 16px; min-width: 130px; }
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; }
.tile .hint { color: var(--muted); font-size: 12px; }
.panel { background: var(--surface); border: 1px solid var(--ring);
  border-radius: 8px; padding: 16px; margin-top: 8px; }
svg text { fill: var(--muted); font: 11px system-ui, sans-serif; }
svg text.val { fill: var(--ink-2); }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--axis); stroke-width: 1; }
svg .band { fill: var(--grid); opacity: 0.45; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: right; padding: 5px 10px;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
.pass { color: var(--good); } .trip { color: var(--critical); }
.status-chip { font-weight: 600; }
.timeline td { font-variant-numeric: tabular-nums; }
.neg { color: var(--critical); }
"""

_CHART_W = 720
_CHART_H = 150
_PAD_L = 52
_PAD_R = 72
_PAD_T = 12
_PAD_B = 22


def _nice_ticks(hi):
    """Three clean axis values 0..ceil: [0, mid, top]."""
    if hi <= 0:
        return [0.0, 0.5, 1.0]
    import math
    magnitude = 10 ** math.floor(math.log10(hi))
    for mult in (1, 2, 2.5, 5, 10):
        top = magnitude * mult
        if top >= hi:
            return [0.0, top / 2.0, top]
    return [0.0, hi / 2.0, hi]


def _svg_line_chart(points, key, phases, fmt, color_var, title):
    """One single-series round-indexed line panel with phase bands.

    ``points`` are trend points; ``key`` picks the metric.  Downsampled
    points draw with a hollow marker so the raw/bucket seam is visible.
    Native ``<title>`` elements give every marker a hover value, and the
    full series repeats in the page's table view.
    """
    values = [(p, p[key]) for p in points]
    present = [v for _, v in values if v is not None]
    if not present:
        return "<p class=\"sub\">no {} data yet</p>".format(title)
    max_round = max(p["rounds"][1] for p, _ in values)
    ticks = _nice_ticks(max(present))
    top = ticks[-1] or 1.0
    plot_w = _CHART_W - _PAD_L - _PAD_R
    plot_h = _CHART_H - _PAD_T - _PAD_B

    def x_at(round_value):
        return _PAD_L + plot_w * (round_value / max_round)

    def y_at(value):
        return _PAD_T + plot_h * (1.0 - min(value, top) / top)

    parts = ["<svg viewBox=\"0 0 {} {}\" width=\"100%\" role=\"img\" "
             "aria-label=\"{}\">".format(_CHART_W, _CHART_H, title)]
    for phase in phases or ():
        if phase["kind"] == "baseline":
            continue
        x0, x1 = x_at(phase["rounds"][0]), x_at(phase["rounds"][1])
        parts.append(
            "<rect class=\"band\" x=\"{:.1f}\" y=\"{}\" width=\"{:.1f}\" "
            "height=\"{}\"><title>{} {}</title></rect>".format(
                x0, _PAD_T, x1 - x0, plot_h, phase["kind"],
                _escape(phase["label"])))
        parts.append(
            "<text x=\"{:.1f}\" y=\"{}\">{}</text>".format(
                x0 + 3, _PAD_T + 11, _escape(phase["label"])))
    for tick in ticks:
        y = y_at(tick)
        parts.append("<line class=\"grid\" x1=\"{}\" y1=\"{:.1f}\" "
                     "x2=\"{}\" y2=\"{:.1f}\"/>".format(
                         _PAD_L, y, _CHART_W - _PAD_R, y))
        parts.append("<text x=\"{}\" y=\"{:.1f}\" "
                     "text-anchor=\"end\">{}</text>".format(
                         _PAD_L - 6, y + 4, fmt(tick)))
    parts.append("<line class=\"axis\" x1=\"{}\" y1=\"{:.1f}\" x2=\"{}\" "
                 "y2=\"{:.1f}\"/>".format(_PAD_L, y_at(0),
                                          _CHART_W - _PAD_R, y_at(0)))
    coords = []
    for p, v in values:
        if v is None:
            continue
        mid = (p["rounds"][0] + p["rounds"][1]) / 2.0
        coords.append((x_at(mid), y_at(v), p, v))
    if len(coords) > 1:
        path = " ".join("{:.1f},{:.1f}".format(x, y) for x, y, _, _ in coords)
        parts.append("<polyline points=\"{}\" fill=\"none\" "
                     "stroke=\"var({})\" stroke-width=\"2\" "
                     "stroke-linejoin=\"round\" "
                     "stroke-linecap=\"round\"/>".format(path, color_var))
    for x, y, p, v in coords:
        fill = "var(--surface)" if p["downsampled"] else "var({})".format(
            color_var)
        parts.append(
            "<circle cx=\"{:.1f}\" cy=\"{:.1f}\" r=\"4\" fill=\"{}\" "
            "stroke=\"{}\" stroke-width=\"2\">"
            "<title>rounds {}-{}: {}</title></circle>".format(
                x, y, fill,
                "var({})".format(color_var) if p["downsampled"]
                else "var(--surface)",
                p["rounds"][0], p["rounds"][1] - 1, fmt(v)))
    # Direct label on the latest value — the one number the panel is about.
    x, y, _, v = coords[-1]
    parts.append("<text class=\"val\" x=\"{:.1f}\" y=\"{:.1f}\">{}</text>"
                 .format(x + 8, y + 4, fmt(v)))
    parts.append("<text x=\"{}\" y=\"{}\">round</text>".format(
        _CHART_W - _PAD_R - 34, _CHART_H - 6))
    parts.append("</svg>")
    return "".join(parts)


def _escape(text):
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def render_html(store, run_id=None):
    """A self-contained fleet-health page (inline SVG, no scripts)."""
    data = gather(store, run_id)
    status = data["status"]
    points = data["trend"]["points"]
    phases = data["stages"]["phases"]
    gates = data["gates"]["gates"]
    events = data["rollbacks"]["events"]

    def rate_fmt(value):
        return "{:.2f}".format(value)

    def us_fmt(value):
        return _fmt_us(value)

    html = ["<!DOCTYPE html>", "<html lang=\"en\">", "<head>",
            "<meta charset=\"utf-8\">",
            "<meta name=\"viewport\" "
            "content=\"width=device-width, initial-scale=1\">",
            "<title>fleet health — run {}</title>".format(status["run"]),
            "<style>", _CSS, "</style>", "</head>", "<body>"]
    html.append("<h1>Fleet health — run {} ({})</h1>".format(
        status["run"], _escape(status["kind"])))
    chip_class = "pass" if status["status"] == "completed" else (
        "trip" if status["status"] == "rolled_back" else "sub")
    html.append("<p class=\"sub\">status <span class=\"status-chip {}\">{}"
                "</span> &middot; committed round {}{} &middot; t={:.0f}s"
                "</p>".format(
                    chip_class, _escape(status["status"]),
                    status["committed_round"],
                    " of {}".format(status["total_rounds"] - 1)
                    if status["total_rounds"] else "",
                    status["time_s"]))

    html.append("<div class=\"tiles\">")
    for label, value, hint in (
        ("Hosts", str(status["hosts"]), "fleet size"),
        ("Violation rate", _fmt_rate(status["violation_rate"]),
         "per host-second"),
        ("Inconclusive rate", _fmt_rate(status["inconclusive_rate"]),
         "per host-second"),
        ("Completed I/Os", "{:,}".format(status["totals"]["completed_ios"]),
         "simulated"),
    ):
        html.append("<div class=\"tile\"><div class=\"label\">{}</div>"
                    "<div class=\"value\">{}</div>"
                    "<div class=\"hint\">{}</div></div>".format(
                        label, value, hint))
    html.append("</div>")

    html.append("<h2>Violation rate per host-second</h2>")
    html.append("<div class=\"panel\">{}</div>".format(
        _svg_line_chart(points, "violation_rate", phases, rate_fmt,
                        "--s1", "violation rate per round")))
    html.append("<h2>Inconclusive rate per host-second</h2>")
    html.append("<div class=\"panel\">{}</div>".format(
        _svg_line_chart(points, "inconclusive_rate", phases, rate_fmt,
                        "--s2", "inconclusive rate per round")))
    html.append("<h2>Latency p95</h2>")
    html.append("<div class=\"panel\">{}</div>".format(
        _svg_line_chart(points, "p95_us", phases, us_fmt,
                        "--s3", "latency p95 per round")))

    if gates:
        html.append("<h2>Gate margins</h2>")
        html.append("<div class=\"panel\"><table>")
        html.append("<tr><th>stage</th><th>round</th><th>verdict</th>"
                    "<th>violation margin</th><th>inconclusive margin</th>"
                    "<th>p95 margin</th></tr>")
        for gate in gates:
            margins = gate["margins"]
            cells = []
            for key in ("violation_rate_delta", "inconclusive_rate_delta",
                        "p95_ratio"):
                margin = margins.get(key)
                if margin is None:
                    cells.append("<td>n/a</td>")
                else:
                    cls = " class=\"neg\"" if margin < 0 else ""
                    cells.append("<td{}>{}</td>".format(
                        cls, _fmt_margin(margin)))
            html.append(
                "<tr><td>{}</td><td>{}</td>"
                "<td class=\"{}\">{}</td>{}</tr>".format(
                    _escape(gate["stage"]), gate["round"],
                    "pass" if gate["passed"] else "trip",
                    "PASS" if gate["passed"] else "TRIP",
                    "".join(cells)))
        html.append("</table></div>")

    html.append("<h2>Rollback timeline</h2>")
    html.append("<div class=\"panel\">")
    if events:
        html.append("<table class=\"timeline\">")
        html.append("<tr><th>t</th><th>event</th><th>detail</th></tr>")
        for entry in events:
            detail = {k: v for k, v in entry.items()
                      if k not in ("round", "time_s", "event")}
            html.append("<tr><td>{:.1f}s</td><td>{}</td><td>{}</td></tr>"
                        .format(entry["time_s"], _escape(entry["event"]),
                                _escape(", ".join(
                                    "{}={}".format(k, detail[k])
                                    for k in sorted(detail)))))
        html.append("</table>")
    else:
        html.append("<p class=\"sub\">clean — no gate tripped</p>")
    html.append("</div>")

    # Table view: every plotted value, for the CVD/print/no-color case.
    html.append("<h2>Per-round data</h2>")
    html.append("<div class=\"panel\"><table>")
    html.append("<tr><th>rounds</th><th>grain</th><th>violation rate</th>"
                "<th>inconclusive rate</th><th>p95</th><th>I/Os</th></tr>")
    for p in points:
        html.append(
            "<tr><td>{}-{}</td><td>{}</td><td>{}</td><td>{}</td>"
            "<td>{}</td><td>{:,}</td></tr>".format(
                p["rounds"][0], p["rounds"][1] - 1,
                "bucket" if p["downsampled"] else "raw",
                _fmt_rate(p["violation_rate"]),
                _fmt_rate(p["inconclusive_rate"]),
                _fmt_us(p["p95_us"]), p["completed_ios"]))
    html.append("</table></div>")
    html.append("</body>")
    html.append("</html>")
    return "\n".join(html) + "\n"


__all__ = [
    "gather",
    "render_html",
    "render_terminal",
    "sparkline",
]

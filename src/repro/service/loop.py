"""The long-lived fleet service loop.

``grctl fleet`` is batch: run, print, exit.  This module is the
continuous-operation counterpart: it drives a fleet scenario round by
round on the virtual clock and streams every round's host digests — plus
the rollout control plane's phases, gate verdicts, and timeline — into a
:class:`~repro.service.store.ResultsStore` *as they happen*.  Nothing
buffers a whole run: peak memory is the live hosts plus one round of
digests, regardless of how many rounds or simulated I/Os the soak covers.

Checkpointing is the store's per-round transaction: each committed round
advances the ``committed_round`` watermark atomically with its data, so a
killed service restarts with :func:`resume` — the simulation replays
deterministically from round zero (hosts are sharded simulator state, not
serializable mid-round), skips ingest for every round at or below the
watermark, and continues committing where the dead service stopped.  No
round is ever duplicated or lost, and a resumed run's store is
byte-identical to an uninterrupted one.
"""

import json

from repro.fleet.rollout import RolloutController, RolloutObserver
from repro.fleet.scenario import build_fleet_rollout, make_fleet_specs
from repro.fleet.worker import FleetRunner
from repro.sim.units import SECOND
from repro.service.store import StoreError
from repro.trace.tracer import TRACER


class ServiceError(Exception):
    """The service loop cannot run or resume the requested scenario."""


class ServiceInterrupted(Exception):
    """Raised internally when ``max_rounds`` stops a run mid-flight."""


class StoreObserver(RolloutObserver):
    """Streams a controller's rounds and control-plane records to a store.

    Timeline entries are numbered with a deterministic global sequence;
    on resume, entries whose sequence is already committed are skipped
    (the replayed values are identical, the store stays append-only).
    Control records that accrue *after* a round's commit (gate verdicts,
    phase boundaries, post-bake timeline entries) ride along with the next
    round's transaction, or with the run's finalize.
    """

    def __init__(self, store, run_id, skip_through=-1, max_rounds=None):
        self.store = store
        self.run_id = run_id
        self.skip_through = skip_through
        self.max_rounds = max_rounds
        self.rounds_committed = 0
        self.digests_ingested = 0
        self.rows_deleted = 0
        self._seq = 0
        self._skip_seq_through = store.max_event_seq(run_id)
        self._events = []
        self._phases = []
        self._gates = []

    # -- RolloutObserver hooks ---------------------------------------------

    def on_timeline(self, entry):
        seq = self._seq
        self._seq += 1
        if seq > self._skip_seq_through:
            self._events.append((seq, entry))

    def on_phase(self, phase):
        self._phases.append(phase)

    def on_gate(self, stage_label, round_index, result):
        self._gates.append((stage_label, round_index, result.to_dict()))

    def on_round(self, round_index, time_ns, digests):
        if round_index <= self.skip_through:
            # Already committed by the run this one resumes; the replay
            # only exists to rebuild simulator state.
            self._drain()
            return
        folded = self.store.commit_round(
            self.run_id, round_index, time_ns, digests,
            events=self._events, phases=self._phases, gates=self._gates)
        self._drain()
        self.rounds_committed += 1
        self.digests_ingested += len(digests)
        self.rows_deleted += folded["rows_deleted"]
        if TRACER.active:
            TRACER.emit("service", "round.commit", time_ns,
                        args={"run": self.run_id, "round": round_index,
                              "digests": len(digests)})
            if folded["rows_deleted"]:
                TRACER.emit("service", "retention.fold", time_ns,
                            args={"run": self.run_id,
                                  "rows_deleted": folded["rows_deleted"]})
        if (self.max_rounds is not None
                and self.rounds_committed >= self.max_rounds):
            raise ServiceInterrupted()

    # -- finalize ----------------------------------------------------------

    def _drain(self):
        self._events = []
        self._phases = []
        self._gates = []

    def finalize(self, status, rolled_back_at=None, final_rounds=None):
        self.store.finalize_run(
            self.run_id, status, rolled_back_at=rolled_back_at,
            final_rounds=final_rounds, events=self._events,
            phases=self._phases, gates=self._gates)
        self._drain()
        if TRACER.active:
            TRACER.emit("service", "run.finalized",
                        (final_rounds or 0) * SECOND,
                        args={"run": self.run_id, "status": status})


def _summary(run_id, kind, status, observer, store):
    totals = {"completed_ios": 0, "violations": 0, "inconclusive": 0,
              "checks": 0}
    for row in store.round_rows(run_id):
        for key in totals:
            totals[key] += row[key]
    run = store.run(run_id)
    return {
        "run": run_id,
        "kind": kind,
        "status": status,
        "hosts": run["hosts"],
        "committed_round": run["committed_round"],
        "rounds_committed_now": observer.rounds_committed,
        "digests_ingested_now": observer.digests_ingested,
        "raw_rows_deleted_now": observer.rows_deleted,
        "totals": totals,
    }


def serve_rollout(store, hosts=8, stages="canary:1,25%,100%", seed=42,
                  fault_hosts=0, quick=False, fault_kind="corrupt", jobs=1,
                  max_rounds=None):
    """Run the canonical staged rollout *into a store*; returns a summary.

    Identical simulation to :func:`repro.fleet.scenario.run_fleet_rollout`
    (same builder, same controller) — the store just watches, which is why
    a report regenerated from the store matches the live report
    byte-for-byte.  ``max_rounds`` commits that many rounds and stops
    without finalizing, leaving the run resumable.
    """
    built = build_fleet_rollout(hosts=hosts, stages=stages, seed=seed,
                                fault_hosts=fault_hosts, quick=quick,
                                fault_kind=fault_kind)
    run_id = store.begin_run(
        "rollout", built.scenario, SECOND, hosts,
        total_rounds=built.total_rounds, plan=built.plan.to_dict(),
        versions={"old": built.old_version.to_dict(),
                  "new": built.new_version.to_dict()})
    return _drive_rollout(store, run_id, built, jobs=jobs,
                          max_rounds=max_rounds, skip_through=-1)


def serve_soak(store, hosts=8, seed=42, rate_ios=400, rounds=30, jobs=1,
               max_rounds=None):
    """Run a steady-state soak (no rollout) into a store.

    Every host runs the observe-only v1 guardrail for ``rounds`` lockstep
    rounds; the value is the stream of digests, not a deployment verdict.
    This is the bounded-memory scaling scenario: hundreds of hosts times
    millions of simulated I/Os, with the store's retention policy keeping
    disk bounded too.
    """
    scenario = {"hosts": hosts, "seed": seed, "rate_ios": rate_ios,
                "rounds": rounds}
    run_id = store.begin_run("soak", scenario, SECOND, hosts,
                             total_rounds=rounds)
    return _drive_soak(store, run_id, scenario, jobs=jobs,
                       max_rounds=max_rounds, skip_through=-1)


def resume(store, run_id=None, jobs=1, max_rounds=None):
    """Resume an interrupted run from its last committed round.

    The scenario is rebuilt from the run row alone and replayed
    deterministically; rounds at or below the checkpoint watermark are
    re-simulated (to rebuild host state) but not re-ingested.
    """
    if run_id is None:
        run_id = store.latest_run_id()
        if run_id is None:
            raise ServiceError("store {!r} has no runs".format(store.path))
    run = store.run(run_id)
    if run["status"] != "running":
        raise ServiceError(
            "run {} is {}; only interrupted (running) runs resume".format(
                run_id, run["status"]))
    if TRACER.active:
        TRACER.emit("service", "checkpoint.resume",
                    (run["committed_round"] + 1) * run["round_ns"],
                    args={"run": run_id,
                          "committed_round": run["committed_round"]})
    watermark = run["committed_round"]
    if run["kind"] == "rollout":
        built = build_fleet_rollout(**_rollout_kwargs(run["scenario"]))
        return _drive_rollout(store, run_id, built, jobs=jobs,
                              max_rounds=max_rounds, skip_through=watermark)
    if run["kind"] == "soak":
        return _drive_soak(store, run_id, run["scenario"], jobs=jobs,
                           max_rounds=max_rounds, skip_through=watermark)
    if run["kind"].startswith("autopilot."):
        raise ServiceError(
            "run {} is an {} run; autopilot runs replay as a whole — "
            "rerun `grctl autopilot` instead of resuming".format(
                run_id, run["kind"]))
    raise ServiceError("run {} has unknown kind {!r}".format(
        run_id, run["kind"]))


def _rollout_kwargs(scenario):
    return {"hosts": scenario["hosts"], "stages": scenario["stages"],
            "seed": scenario["seed"], "fault_hosts": scenario["fault_hosts"],
            # Stores written before fault kinds existed hold corrupt-fault
            # runs, the only kind there was.
            "fault_kind": scenario.get("fault_kind", "corrupt"),
            "quick": scenario["quick"]}


def _drive_rollout(store, run_id, built, jobs, max_rounds, skip_through):
    observer = StoreObserver(store, run_id, skip_through=skip_through,
                             max_rounds=max_rounds)
    try:
        with FleetRunner(built.specs, built.old_version, SECOND,
                         built.total_rounds, jobs=jobs) as runner:
            controller = RolloutController(
                runner, built.old_version, built.new_version, built.plan,
                SECOND, observer=observer)
            try:
                report = controller.run()
            except ServiceInterrupted:
                return _summary(run_id, "rollout", "running", observer, store)
    except StoreError as exc:
        raise ServiceError(str(exc))
    observer.finalize(report["status"],
                      rolled_back_at=report["rolled_back_at_stage"],
                      final_rounds=report["rounds"])
    return _summary(run_id, "rollout", report["status"], observer, store)


def _drive_soak(store, run_id, scenario, jobs, max_rounds, skip_through):
    from repro.fleet.scenario import fleet_versions

    rounds = scenario["rounds"]
    specs = make_fleet_specs(scenario["hosts"], scenario["seed"],
                             scenario["rate_ios"])
    old_version, _ = fleet_versions()
    observer = StoreObserver(store, run_id, skip_through=skip_through,
                             max_rounds=max_rounds)
    try:
        with FleetRunner(specs, old_version, SECOND, rounds,
                         jobs=jobs) as runner:
            for round_index in range(rounds):
                until_ns = (round_index + 1) * SECOND
                digests = runner.step_round(round_index, until_ns)
                try:
                    observer.on_round(round_index, until_ns, digests)
                except ServiceInterrupted:
                    return _summary(run_id, "soak", "running", observer,
                                    store)
    except StoreError as exc:
        raise ServiceError(str(exc))
    observer.finalize("completed", final_rounds=rounds)
    return _summary(run_id, "soak", "completed", observer, store)


def summary_json(summary):
    """Deterministic JSON text for a serve/resume summary."""
    return json.dumps(summary, indent=2, sort_keys=True)


__all__ = [
    "ServiceError",
    "StoreObserver",
    "resume",
    "serve_rollout",
    "serve_soak",
    "summary_json",
]

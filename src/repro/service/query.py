"""Typed queries over a fleet results store.

Every query reads the store alone — no live fleet, no controller — and
every one is answerable *mid-run* (WAL mode lets readers watch a store a
service is still writing).  The flagship query, :func:`regenerate_report`,
rebuilds the full ``grctl fleet --json`` rollout report from stored rows:
host digests round-trip exactly (:meth:`HostDigest.to_row`/``from_row``),
cohort merges replay in the same (round, host) order the live controller
used, and gates re-evaluate from the same config — so the regenerated
report is byte-identical to the live one.

Aggregations over rounds past the retention horizon fall back to the
downsampled time buckets; results that had to touch a bucket only
partially covering the requested range are flagged ``approximate``.
"""

import json

from repro.fleet.aggregate import FleetDigest, HostDigest
from repro.fleet.rollout import GateConfig
from repro.service.store import StoreError, digest_from_bucket_row


def resolve_run(store, run_id=None):
    """The requested (or latest) run row; StoreError when the store is empty."""
    if run_id is None:
        run_id = store.latest_run_id()
        if run_id is None:
            raise StoreError("store {!r} has no runs".format(store.path))
    return store.run(run_id)


# -- aggregation over the raw/downsampled seam ------------------------------


def merged_digest(store, run_id, start_round, end_round, host_ids=None,
                  round_ns=None):
    """Fold stored digests over ``[start_round, end_round)`` into one
    :class:`FleetDigest`.

    Raw rows merge in (round, host) order — the live controller's order.
    Rounds with no raw rows are served from buckets; a bucket that only
    partially overlaps the range is still folded in (its rounds cannot be
    split) and marks the result approximate.  Returns ``(digest, meta)``
    where ``meta`` reports coverage: raw round count, buckets used, and
    the ``approximate`` flag.
    """
    if round_ns is None:
        round_ns = store.run(run_id)["round_ns"]
    digest = FleetDigest(round_ns)
    raw_rounds = set()
    for row in store.digest_rows(run_id, start_round, end_round):
        if host_ids is not None and row["host_id"] not in host_ids:
            continue
        digest.merge_host(HostDigest.from_row(row))
        raw_rounds.add(row["round_index"])
    buckets_used = 0
    approximate = False
    for row in store.bucket_rows(run_id, start_round, end_round):
        if host_ids is not None and row["host_id"] not in host_ids:
            continue
        if row["start_round"] in raw_rounds:
            continue  # seam overlap: the raw side already covers this
        digest.merge_host(digest_from_bucket_row(row), rounds=row["rounds"])
        buckets_used += 1
        if row["start_round"] < start_round or row["end_round"] > end_round:
            approximate = True
    meta = {"raw_rounds": len(raw_rounds), "buckets": buckets_used,
            "approximate": approximate}
    return digest, meta


# -- queries ----------------------------------------------------------------


def run_status(store, run_id=None):
    """Live rollout/soak status: watermark, phase, fleet totals so far."""
    run = resolve_run(store, run_id)
    run_id = run["run_id"]
    totals = {"checks": 0, "violations": 0, "inconclusive": 0,
              "completed_ios": 0}
    last_time_ns = 0
    committed = -1
    for row in store.round_rows(run_id):
        for key in totals:
            totals[key] += row[key]
        last_time_ns = max(last_time_ns, row["time_ns"])
        committed = max(committed, row["round_index"])
    phases = store.phase_rows(run_id)
    current_phase = None
    for row in phases:
        if row["start_round"] <= committed:
            current_phase = {"kind": row["kind"], "label": row["label"],
                             "target_hosts": row["target_hosts"]}
    host_seconds = (committed + 1) * run["hosts"] * run["round_ns"] / 1e9
    return {
        "run": run_id,
        "kind": run["kind"],
        "status": run["status"],
        "hosts": run["hosts"],
        "committed_round": run["committed_round"],
        "total_rounds": run["total_rounds"],
        "time_s": last_time_ns / 1e9,
        "phase": current_phase,
        "rolled_back_at_stage": run["rolled_back_at"],
        "totals": totals,
        "violation_rate": (totals["violations"] / host_seconds
                           if host_seconds else 0.0),
        "inconclusive_rate": (totals["inconclusive"] / host_seconds
                              if host_seconds else 0.0),
    }


def stage_rates(store, run_id=None):
    """Per-phase violation/inconclusive rates and latency, mid-run safe."""
    run = resolve_run(store, run_id)
    run_id = run["run_id"]
    out = []
    for row in store.phase_rows(run_id):
        cohort = None
        if row["kind"] in ("baseline", "rollback"):
            host_ids = None
        else:
            host_ids = set(range(row["target_hosts"]))
            cohort = row["target_hosts"]
        digest, meta = merged_digest(
            store, run_id, row["start_round"], row["end_round"],
            host_ids=host_ids, round_ns=run["round_ns"])
        entry = {
            "kind": row["kind"],
            "label": row["label"],
            "rounds": [row["start_round"], row["end_round"]],
            "cohort_hosts": cohort if cohort is not None else run["hosts"],
            "violation_rate": digest.violation_rate(),
            "inconclusive_rate": digest.inconclusive_rate(),
            "p95_us": _none_if_nan(digest.p95_us()),
            "mean_latency_us": _none_if_nan(digest.mean_latency_us()),
            "completed_ios": digest.completed_ios,
            "coverage": meta,
        }
        out.append(entry)
    return {"run": run_id, "phases": out}


def latency_trend(store, run_id=None):
    """Per-round p95/rate series; coarse bucket points past the horizon.

    The series is ordered by time: one point per downsampled bucket
    (flagged ``downsampled``), then one point per raw round.  Rates use
    host-second denominators either way, so the seam is visible only as a
    change of grain, not of units.
    """
    run = resolve_run(store, run_id)
    run_id = run["run_id"]
    round_s = run["round_ns"] / 1e9
    points = []
    raw_rounds = set(store.raw_round_indexes(run_id))
    bucket_digests = {}
    for row in store.bucket_rows(run_id):
        if row["start_round"] in raw_rounds:
            continue
        key = (row["start_round"], row["end_round"])
        digest, state = bucket_digests.get(key, (FleetDigest(
            run["round_ns"]), {"rounds": 0}))
        digest.merge_host(digest_from_bucket_row(row), rounds=row["rounds"])
        state["rounds"] = max(state["rounds"], row["rounds"])
        bucket_digests[key] = (digest, state)
    for (start, end), (digest, _) in sorted(bucket_digests.items()):
        host_seconds = digest.host_seconds()
        points.append({
            "rounds": [start, end],
            "time_s": end * round_s,
            "downsampled": True,
            "violation_rate": digest.violation_rate(),
            "inconclusive_rate": digest.inconclusive_rate(),
            "p95_us": _none_if_nan(digest.p95_us()),
            "completed_ios": digest.completed_ios,
            "host_seconds": host_seconds,
        })
    for round_index in sorted(raw_rounds):
        digest, _ = merged_digest(store, run_id, round_index,
                                  round_index + 1,
                                  round_ns=run["round_ns"])
        points.append({
            "rounds": [round_index, round_index + 1],
            "time_s": (round_index + 1) * round_s,
            "downsampled": False,
            "violation_rate": digest.violation_rate(),
            "inconclusive_rate": digest.inconclusive_rate(),
            "p95_us": _none_if_nan(digest.p95_us()),
            "completed_ios": digest.completed_ios,
            "host_seconds": digest.host_seconds(),
        })
    return {"run": run_id, "round_s": round_s, "points": points}


def gate_margins(store, run_id=None):
    """Every gate verdict with its margin to each health-gate bound.

    Positive margins mean headroom; a negative margin is the axis that
    tripped (or would have, had another axis not tripped first).
    """
    run = resolve_run(store, run_id)
    run_id = run["run_id"]
    gate_config = None
    if run["plan"] is not None:
        gate_config = run["plan"]["gate"]
    out = []
    for row in store.gate_rows(run_id):
        measurements = json.loads(row["measurements"])
        margins = {}
        if gate_config is not None:
            margins["violation_rate_delta"] = (
                gate_config["max_violation_rate_delta"]
                - measurements["violation_rate_delta"])
            margins["inconclusive_rate_delta"] = (
                gate_config["max_inconclusive_rate_delta"]
                - measurements["inconclusive_rate_delta"])
            ratio = measurements.get("p95_ratio")
            margins["p95_ratio"] = (None if ratio is None
                                    else gate_config["max_p95_ratio"] - ratio)
        out.append({
            "stage": row["stage"],
            "round": row["round_index"],
            "passed": bool(row["passed"]),
            "reasons": json.loads(row["reasons"]),
            "measurements": measurements,
            "margins": margins,
        })
    return {"run": run_id, "gate": gate_config, "gates": out}


def rollback_timeline(store, run_id=None):
    """The halt-and-rollback story: trips, rollback spans, settles."""
    run = resolve_run(store, run_id)
    run_id = run["run_id"]
    wanted = ("gate.trip", "rollback.start", "rollback.done")
    entries = [json.loads(row["entry"]) for row in store.event_rows(run_id)
               if row["event"] in wanted]
    return {"run": run_id, "rolled_back_at_stage": run["rolled_back_at"],
            "events": entries}


def autopilot_changes(store, run_id=None):
    """What the autopilot changed and why: every proposal with its fate.

    Each entry carries the proposal's machine-readable provenance (the
    observed band, sample count, and prior threshold it was mined from)
    and, when it was deployed through a rollout, that run's outcome —
    including the tripped gate's reasons for a rolled-back proposal.
    ``run_id`` restricts to proposals whose deploy run matches (default:
    every proposal in the store).
    """
    out = []
    for row in store.proposal_rows():
        if run_id is not None and row["deploy_run"] != run_id:
            continue
        entry = {
            "proposal": row["proposal_id"],
            "kind": row["kind"],
            "guardrail": row["guardrail"],
            "version": row["version"],
            "verdict": row["verdict"],
            "deploy_run": row["deploy_run"],
            "provenance": json.loads(row["provenance"]),
            "spec": row["spec"],
        }
        if row["deploy_run"] is not None:
            run = store.run(row["deploy_run"])
            deploy = {"status": run["status"],
                      "rolled_back_at_stage": run["rolled_back_at"]}
            reasons = []
            for gate_row in store.gate_rows(row["deploy_run"]):
                if not gate_row["passed"]:
                    reasons.extend(json.loads(gate_row["reasons"]))
            deploy["gate_trip_reasons"] = reasons
            entry["deploy"] = deploy
        out.append(entry)
    return {"proposals": out}


def list_runs(store, run_id=None):
    """All runs in the store (``run_id`` ignored; present for CLI symmetry)."""
    out = []
    for run in store.runs():
        out.append({
            "run": run["run_id"],
            "kind": run["kind"],
            "status": run["status"],
            "hosts": run["hosts"],
            "committed_round": run["committed_round"],
            "total_rounds": run["total_rounds"],
        })
    return {"runs": out}


# -- full report regeneration ----------------------------------------------


def regenerate_report(store, run_id=None):
    """Rebuild the exact ``grctl fleet --json`` report from stored rows.

    Requires a finalized rollout run whose rounds are all still raw
    (retention must not have downsampled them — exactness needs the
    original digests).  Byte-identity with the live report is the store's
    acceptance contract, asserted in tests and CI.
    """
    run = resolve_run(store, run_id)
    run_id = run["run_id"]
    if run["kind"] != "rollout":
        raise StoreError(
            "run {} is a {} run; only rollouts have reports".format(
                run_id, run["kind"]))
    if run["status"] == "running":
        raise StoreError(
            "run {} is still running (committed through round {}); "
            "finalize or resume it first".format(run_id,
                                                 run["committed_round"]))
    raw = store.raw_round_indexes(run_id)
    expected = list(range(run["final_rounds"]))
    if raw != expected:
        raise StoreError(
            "run {} has {} raw rounds of {}; retention downsampled part of "
            "the run, exact report regeneration is no longer possible"
            .format(run_id, len(raw), len(expected)))

    plan = run["plan"]
    gate = GateConfig(**plan["gate"])
    round_ns = run["round_ns"]
    phases = [dict(row) for row in store.phase_rows(run_id)]

    def fold(phase, host_ids=None):
        digest, _ = merged_digest(store, run_id, phase["start_round"],
                                  phase["end_round"], host_ids=host_ids,
                                  round_ns=round_ns)
        return digest

    baseline_digest = None
    stage_reports = []
    plan_stages = list(plan["stages"])
    stage_index = 0
    for phase in phases:
        if phase["kind"] == "baseline":
            baseline_digest = fold(phase)
        elif phase["kind"] == "stage":
            cohort = fold(phase, host_ids=set(range(phase["target_hosts"])))
            verdict = gate.evaluate(baseline_digest, cohort)
            stage_reports.append({
                "stage": plan_stages[stage_index],
                "digest": cohort.to_dict(),
                "gate": verdict.to_dict(),
            })
            stage_index += 1
        elif phase["kind"] == "rollback":
            settle = fold(phase)
            stage_reports[-1]["rollback"] = {
                "hosts": phase["target_hosts"],
                "digest": settle.to_dict(),
            }
    timeline = [json.loads(row["entry"]) for row in store.event_rows(run_id)]
    return {
        "status": run["status"],
        "rolled_back_at_stage": run["rolled_back_at"],
        "hosts": run["hosts"],
        "rounds": run["final_rounds"],
        "round_s": round_ns / 1e9,
        "versions": run["versions"],
        "plan": plan,
        "baseline": baseline_digest.to_dict(),
        "stages": stage_reports,
        "timeline": timeline,
        "scenario": run["scenario"],
    }


def _none_if_nan(value):
    if isinstance(value, float) and value != value:
        return None
    return value


#: CLI registry: ``grctl query <name>``.
QUERIES = {
    "status": run_status,
    "stages": stage_rates,
    "trend": latency_trend,
    "gates": gate_margins,
    "rollbacks": rollback_timeline,
    "runs": list_runs,
    "report": regenerate_report,
    "autopilot": autopilot_changes,
}


__all__ = [
    "QUERIES",
    "autopilot_changes",
    "gate_margins",
    "latency_trend",
    "list_runs",
    "merged_digest",
    "regenerate_report",
    "resolve_run",
    "rollback_timeline",
    "run_status",
    "stage_rates",
]

"""Guardrails for the OS — reproduction of the HotOS '25 paper.

Public API tour::

    from repro import Kernel, GuardrailManager

    kernel = Kernel(seed=42)
    kernel.guardrails.load('''
        guardrail low-false-submit {
          trigger: { TIMER(start_time, 1e9) },
          rule:    { LOAD(false_submit_rate) <= 0.05 },
          action:  { SAVE(ml_enabled, false) }
        }
    ''')
    kernel.run(until=10_000_000_000)

Packages:

- :mod:`repro.core` — the guardrail framework (DSL, compiler, verifier,
  monitors, actions, feature store, property templates, synthesis,
  auto-tightening, feedback-loop detection, dependency-tracked checking);
- :mod:`repro.kernel` — the simulated OS substrate (storage, memory,
  scheduler, cache, network);
- :mod:`repro.policies` — learned policies + heuristic fallbacks;
- :mod:`repro.ml` — from-scratch numpy ML (MLP, Adam, Q-learning);
- :mod:`repro.detect` — streaming statistics and drift detection;
- :mod:`repro.sim` — the discrete-event engine.
"""

from repro.core import (
    FeatureStore,
    GuardrailCompiler,
    GuardrailManager,
    GuardrailMonitor,
    parse_guardrail,
    parse_guardrails,
)
from repro.kernel import Kernel

__version__ = "0.1.0"

__all__ = [
    "FeatureStore",
    "GuardrailCompiler",
    "GuardrailManager",
    "GuardrailMonitor",
    "parse_guardrail",
    "parse_guardrails",
    "Kernel",
    "__version__",
]

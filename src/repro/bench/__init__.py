"""Benchmark harness helpers: run experiment scenarios, print paper-style rows."""

from repro.bench.report import format_series, format_table
from repro.bench.scenarios import (
    Fig2Result,
    bucket_series,
    run_figure2_scenario,
    train_default_linnos_model,
)

__all__ = [
    "format_series",
    "format_table",
    "Fig2Result",
    "bucket_series",
    "run_figure2_scenario",
    "train_default_linnos_model",
]

"""Benchmark harness: experiment scenarios, paper-style rows, and the
parallel ``grctl bench`` runner with its BENCH.json result format.

Heavy submodules (``scenarios`` pulls in kernel + numpy) stay out of this
namespace so ``repro.bench.results``/``runner`` import fast inside worker
processes; import them explicitly where needed.
"""

from repro.bench.report import format_series, format_table
from repro.bench.results import SCHEMA_VERSION, scenario
from repro.bench.scenarios import (
    Fig2Result,
    bucket_series,
    run_figure2_scenario,
    train_default_linnos_model,
)

__all__ = [
    "SCHEMA_VERSION",
    "format_series",
    "format_table",
    "Fig2Result",
    "bucket_series",
    "run_figure2_scenario",
    "scenario",
    "train_default_linnos_model",
]

"""Parallel sharded benchmark runner behind ``grctl bench``.

Discovers every ``benchmarks/bench_*.py`` module, collects its
``scenarios()`` entries, and runs them across the shared process pool
(:mod:`repro.bench.pool`): one process per scenario, per-scenario
timeout, retry-once on crash.  Scenarios are seed-pinned and share no
state, which is what makes sharding safe; results merge into one
canonical ``BENCH.json`` (see :mod:`repro.bench.results`).

Scheduling is longest-first: scenarios are sorted by their declared
relative ``cost`` and handed to workers as slots free up, so the big
model-training scenarios start immediately and the tail is packed with
cheap ones.  On a 4-core machine this cuts full-suite wall clock well
past 2x versus ``--jobs 1``.
"""

import importlib.util
import pathlib
import sys
import time
import traceback

from repro.bench.pool import DEFAULT_TIMEOUT_S, PoolTask, run_pool
from repro.bench.results import INFO_KEY, git_sha, make_document, scenario


class ScenarioSpec:
    """One runnable scenario: where it lives and how to schedule it."""

    def __init__(self, scenario_id, module_path, quick, cost, seed):
        self.id = scenario_id
        self.module_path = str(module_path)
        self.module = pathlib.Path(module_path).stem
        self.quick = quick
        self.cost = cost
        self.seed = seed


class DiscoveryError(Exception):
    """A bench module is missing or violates the scenarios() contract."""


def load_bench_module(path):
    """Import a ``bench_*.py`` file standalone (no package machinery)."""
    path = pathlib.Path(path)
    name = "repro_bench_scenarios_{}".format(path.stem)
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise DiscoveryError("cannot import {}".format(path))
    module = importlib.util.module_from_spec(spec)
    # Registered so dataclasses/pickling inside the module resolve, and so
    # a second load in the same process reuses the first.
    existing = sys.modules.get(name)
    if existing is not None:
        return existing
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def discover(bench_dir):
    """All scenarios under ``bench_dir``, sorted by declared cost (desc)."""
    bench_dir = pathlib.Path(bench_dir)
    if not bench_dir.is_dir():
        raise DiscoveryError(
            "benchmark directory {} does not exist".format(bench_dir))
    specs = []
    seen = {}
    for path in sorted(bench_dir.glob("bench_*.py")):
        module = load_bench_module(path)
        entries = getattr(module, "scenarios", None)
        if entries is None:
            raise DiscoveryError(
                "{} does not define scenarios()".format(path.name))
        for scenario_id, fn in entries():
            if scenario_id in seen:
                raise DiscoveryError(
                    "duplicate scenario id {!r} in {} (also in {})".format(
                        scenario_id, path.name, seen[scenario_id]))
            seen[scenario_id] = path.name
            specs.append(ScenarioSpec(
                scenario_id, path,
                quick=getattr(fn, "quick", True),
                cost=getattr(fn, "cost", 1.0),
                seed=getattr(fn, "seed", None)))
    if not specs:
        raise DiscoveryError(
            "no bench_*.py scenarios under {}".format(bench_dir))
    return sorted(specs, key=lambda s: (-s.cost, s.id))


def select(specs, quick=False, filter_expr=None):
    """Apply the tier and ``--filter`` substring to a discovery result."""
    chosen = [s for s in specs if (s.quick or not quick)]
    if filter_expr:
        chosen = [s for s in chosen if filter_expr in s.id
                  or filter_expr in s.module]
    return chosen


def _make_report_sink(out_dir):
    if out_dir is None:
        return None
    out_dir = pathlib.Path(out_dir)

    def emit(name, text):
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / (name + ".txt")
        path.write_text(text + "\n")
        return path

    return emit


def _worker(module_path, scenario_id, out_dir, conn):
    """Child-process entry: run one scenario, ship (status, payload).

    The result travels over a pipe rather than a ``multiprocessing.Queue``:
    ``Pipe.send`` writes synchronously before the child exits, so the
    parent can never observe a dead child whose result is still stuck in a
    queue feeder thread.
    """
    try:
        module = load_bench_module(module_path)
        fn = dict(module.scenarios())[scenario_id]
        started = time.perf_counter()
        metrics = fn(report=_make_report_sink(out_dir))
        wall = time.perf_counter() - started
        if not isinstance(metrics, dict):
            raise TypeError(
                "scenario {!r} returned {!r}, expected a metric dict".format(
                    scenario_id, type(metrics).__name__))
        metrics = dict(metrics)
        info = metrics.pop(INFO_KEY, None)
        conn.send(("ok", {"metrics": metrics, "info": info,
                          "wall_time_s": wall}))
    except BaseException:
        conn.send(("error", {"error": traceback.format_exc()}))
    finally:
        conn.close()


def run_scenarios(specs, jobs=1, timeout_s=DEFAULT_TIMEOUT_S, out_dir=None,
                  progress=None):
    """Run scenario specs on ``jobs`` worker processes; return result dicts.

    Per-scenario failure policy: a Python exception is deterministic and
    recorded as ``status="error"`` immediately; a crashed or timed-out
    worker is retried once (``status="crash"``/``"timeout"`` if the retry
    also dies).  The returned list is sorted by scenario id regardless of
    completion order, so merged output is canonical.
    """
    by_id = {spec.id: spec for spec in specs}
    tasks = [PoolTask(spec.id, _worker,
                      (spec.module_path, spec.id, out_dir), cost=spec.cost)
             for spec in specs]  # already longest-first from discover()
    results = []
    for outcome in run_pool(tasks, jobs=jobs, timeout_s=timeout_s,
                            progress=progress):
        spec = by_id[outcome["id"]]
        result = {
            "id": spec.id,
            "module": spec.module,
            "seed": spec.seed,
            "attempts": outcome["attempts"],
            "status": outcome["status"],
            "wall_time_s": None,
            "metrics": {},
            "info": None,
            "error": None,
        }
        result.update(outcome["payload"])
        results.append(result)
    return results


def run_suite(bench_dir, jobs=1, quick=False, filter_expr=None,
              timeout_s=DEFAULT_TIMEOUT_S, out_dir=None, progress=None):
    """Discover, select, run, and merge into a BENCH.json document."""
    specs = select(discover(bench_dir), quick=quick, filter_expr=filter_expr)
    if not specs:
        raise DiscoveryError(
            "no scenarios match filter {!r}".format(filter_expr))
    started = time.time()
    scenario_results = run_scenarios(
        specs, jobs=jobs, timeout_s=timeout_s, out_dir=out_dir,
        progress=progress)
    document = make_document(
        scenario_results, tier="quick" if quick else "full", jobs=jobs,
        filter_expr=filter_expr, sha=git_sha(), created_unix=started)
    return document


__all__ = [
    "DEFAULT_TIMEOUT_S",
    "DiscoveryError",
    "ScenarioSpec",
    "discover",
    "load_bench_module",
    "run_scenarios",
    "run_suite",
    "scenario",
    "select",
]

"""Reusable experiment scenarios shared by examples, tests, and benchmarks.

The Figure 2 scenario lives here so the example script, the regression
test, and the benchmark all run exactly the same experiment.
"""

import collections

from repro.kernel import Kernel
from repro.kernel.storage import (
    DeviceProfile,
    PickDecision,
    PoissonWorkload,
    ReplicatedVolume,
    SsdDevice,
    schedule_profile_change,
)
from repro.policies.linnos import (
    LinnosPolicy,
    collect_training_data,
    train_linnos_model,
)
from repro.sim.units import SECOND

LISTING2_SPEC = """
guardrail low-false-submit {
  trigger: {
    TIMER(start_time, 1e9) // Periodically check every 1s.
  },
  rule: {
    LOAD(false_submit_rate) <= 0.05
  },
  action: {
    SAVE(ml_enabled, false)
  }
}
"""


def build_storage_kernel(seed=1, replicas=3):
    """A kernel with a replicated volume over ``replicas`` pre-drift SSDs."""
    kernel = Kernel(seed=seed)
    devices = [
        SsdDevice(kernel.engine, kernel.engine.rng.get("ssd{}".format(i)),
                  "ssd{}".format(i), DeviceProfile.pre_drift())
        for i in range(replicas)
    ]
    volume = kernel.attach("storage", ReplicatedVolume(kernel, devices))
    return kernel, devices, volume


def train_default_linnos_model(seed=1, train_seconds=20, rate_ios=900,
                               epochs=15):
    """Collect pre-drift training data and fit the LinnOS classifier."""
    kernel, _devices, volume = build_storage_kernel(seed=seed)
    workload = PoissonWorkload(kernel, volume,
                               [(train_seconds * SECOND, rate_ios)])
    features, labels = collect_training_data(
        kernel, volume, workload.start, train_seconds * SECOND
    )
    return train_linnos_model(features, labels, epochs=epochs, seed=seed)


class Fig2Result:
    """Everything the Figure 2 harness reports for one run."""

    def __init__(self, label, kernel, volume, policy):
        self.label = label
        self.kernel = kernel
        self.volume = volume
        self.policy = policy
        self.series = kernel.metrics.series("storage.io_latency_us")

    def moving_average(self, window=200):
        return self.series.moving_average(window)

    def per_second_means(self):
        return bucket_series(self.series, SECOND)

    def mean_between(self, start_s, end_s):
        window = self.series.window(start_s * SECOND, end_s * SECOND)
        if not window:
            return float("nan")
        return sum(v for _, v in window) / len(window)

    @property
    def false_submits(self):
        return self.volume.false_submits

    @property
    def ml_enabled(self):
        return bool(self.kernel.store.load("ml_enabled", default=True))


def bucket_series(series, bucket_ns):
    """Mean of a metric series per ``bucket_ns`` bucket, as (index, mean)."""
    buckets = collections.defaultdict(list)
    for t, v in series:
        buckets[t // bucket_ns].append(v)
    return [(int(b), sum(vs) / len(vs)) for b, vs in sorted(buckets.items())]


CLOSED_LOOP_SPEC = """
guardrail low-false-submit {
  // Listing 2 extended with the A3 leg of the lifecycle.  The threshold is
  // 0.2 rather than 0.05: under GC storms the stationary slow fraction is
  // ~33%, so even a good model false-submits ~10% — the 5% bound belongs to
  // the calm regime (thresholds "require system knowledge", §3.3).  The
  // broken model sits at ~0.5, so separation is clean both ways.
  trigger: { TIMER(start_time, 1e9) },
  rule: { LOAD(false_submit_rate) <= 0.2 },
  action: {
    SAVE(ml_enabled, false),   // disable immediately (A2-style mitigation)
    RETRAIN(linnos)            // and queue retraining on fresh data (A3)
  }
}
"""


def run_closed_loop_scenario(model, seed=2, drift_at_s=6, duration_s=24,
                             rate_ios=1200, training_time_s=3,
                             train_window=3000):
    """Figure 2 extended with the full §3.2 lifecycle.

    misbehave -> detect -> disable -> retrain on the post-drift sample
    buffer -> swap the new model in and re-enable.  Returns the
    :class:`Fig2Result` plus the daemon for inspection.
    """
    from repro.core.retraining import RetrainDaemon
    from repro.policies.linnos import OnlineSampleBuffer, train_linnos_model

    kernel, devices, volume = build_storage_kernel(seed=seed)
    policy = LinnosPolicy(kernel, model)
    volume.install_policy("storage.linnos", policy)
    buffer = OnlineSampleBuffer(volume)
    kernel.guardrails.load(CLOSED_LOOP_SPEC, cooldown=2 * SECOND)

    def trainer(request):
        features, labels = buffer.dataset(last=train_window)
        return train_linnos_model(features, labels, epochs=10, seed=seed)

    def on_complete(new_model, request):
        policy.model = new_model
        kernel.store.save("ml_enabled", True)

    daemon = RetrainDaemon(kernel, poll_interval=1 * SECOND)
    daemon.register("linnos", trainer, on_complete,
                    training_time=training_time_s * SECOND)
    daemon.start()

    schedule_profile_change(kernel, devices, DeviceProfile.post_drift(),
                            drift_at_s * SECOND)
    PoissonWorkload(kernel, volume,
                    [(duration_s * SECOND, rate_ios)]).start()
    kernel.run(until=duration_s * SECOND)
    return Fig2Result("closed-loop", kernel, volume, policy), daemon


TRACE_DEMO_SPECS = """
// The `grctl trace` quick scenario: one TIMER guardrail with a SAVE+RETRAIN
// remedy and one FUNCTION guardrail on the allocation hook, so a short run
// exercises every tracepoint category.
guardrail queue-bound {
  trigger: { TIMER(start_time, 100ms) },
  rule: { LOAD(queue_depth.avg) <= 8 },
  action: { SAVE(throttle, true), RETRAIN(demo) }
}
guardrail alloc-bound {
  trigger: { FUNCTION(mm.alloc) },
  rule: { granted <= available },
  action: { REPORT() }
}
"""


def run_trace_demo_scenario(seed=7, duration_s=4):
    """A small self-contained run that lights up every trace category.

    A synthetic queue-depth ramp violates the TIMER guardrail mid-run
    (SAVE + RETRAIN, drained by a registered no-op trainer) while a
    periodic allocator fires ``mm.alloc`` with occasional over-grants for
    the FUNCTION guardrail.  Returns the kernel for inspection.
    """
    from repro.core.retraining import RetrainDaemon

    kernel = Kernel(seed=seed, retrain_min_interval=SECOND)
    alloc_hook = kernel.hooks.declare("mm.alloc")
    kernel.store.derive_moving_average("queue_depth", window=16)
    kernel.guardrails.load_all(TRACE_DEMO_SPECS)

    daemon = RetrainDaemon(kernel, poll_interval=SECOND // 2)
    daemon.register("demo", lambda request: None,
                    training_time=SECOND // 2)
    daemon.start()

    step_ns = 10 * SECOND // 1000  # 10 ms
    ramp_at = duration_s * SECOND // 2

    def tick(i):
        now = kernel.engine.now
        depth = 2 + (i % 4) if now < ramp_at else 10 + (i % 6)
        kernel.store.save("queue_depth", depth)
        if i % 5 == 0:
            granted = 120 if i % 40 == 0 and now >= ramp_at else 40
            alloc_hook.fire(granted=granted, available=100)
        kernel.engine.schedule(step_ns, tick, i + 1)

    kernel.engine.schedule(0, tick, 0)
    kernel.run(until=duration_s * SECOND)
    return kernel


def run_figure2_scenario(model, mode, seed=2, drift_at_s=6, duration_s=18,
                         rate_ios=1200, guardrail_spec=LISTING2_SPEC,
                         fault_plan=None, supervise=False,
                         breaker_config=None, slow_call_ns=None):
    """One Figure 2 run.

    ``mode``: ``'baseline'`` (round-robin only), ``'linnos'`` (model, no
    guardrail), or ``'guarded'`` (model + the Listing 2 guardrail).
    Mid-run, every device shifts to the post-drift profile.

    ``fault_plan`` optionally arms a :class:`~repro.faults.plan.FaultPlan`
    against the run (the injector is attached to the result as
    ``result.injector``); ``supervise=True`` wraps the pick slot in a
    :class:`~repro.faults.supervisor.PolicySupervisor` (attached as
    ``result.policy_supervisor``) so injected crashes are contained and the
    breaker REPLACEs the policy with round-robin.  The injector installs
    *before* the supervisor: faults fire inside the supervised call.  With
    neither argument the run is byte-identical to the pre-faults scenario.
    """
    if mode not in ("baseline", "linnos", "guarded"):
        raise ValueError("unknown mode {!r}".format(mode))
    kernel, devices, volume = build_storage_kernel(seed=seed)
    policy = None
    if mode != "baseline":
        policy = LinnosPolicy(kernel, model)
        volume.install_policy("storage.linnos", policy)
    if mode == "guarded":
        kernel.guardrails.load(guardrail_spec)
    injector = supervisor = None
    if fault_plan is not None:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(kernel, fault_plan).install()
    if supervise:
        from repro.faults.supervisor import PolicySupervisor, make_pick_validator

        supervisor = PolicySupervisor(
            kernel, volume.PICK_SLOT, volume.FALLBACK_NAME,
            config=breaker_config,
            validator=make_pick_validator(len(devices)),
            slow_call_ns=slow_call_ns)
    schedule_profile_change(kernel, devices, DeviceProfile.post_drift(),
                            drift_at_s * SECOND)
    PoissonWorkload(kernel, volume,
                    [(duration_s * SECOND, rate_ios)]).start()
    kernel.run(until=duration_s * SECOND)
    result = Fig2Result(mode, kernel, volume, policy)
    result.injector = injector
    result.policy_supervisor = supervisor
    return result


FAULTS_DEMO_SPEC = """
// The `grctl faults` quick scenario: a TIMER guardrail over the trailing
// time-average latency.  Corrupt/stale store reads hit its LOAD; its REPORT
// remedy gives action dispatches for the trace to show.
guardrail latency-bound {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(io_latency_us.tavg) <= 2000 },
  action: { REPORT() }
}
"""


class FaultsDemoResult:
    """Everything the chaos demo reports for one run."""

    def __init__(self, kernel, volume, monitor, injector, supervisor):
        self.kernel = kernel
        self.volume = volume
        self.monitor = monitor
        self.injector = injector
        self.policy_supervisor = supervisor

    @property
    def completed(self):
        return self.volume.completed

    def stats(self):
        """One JSON-friendly dict: injections, containment, breakers."""
        return {
            "completed_ios": self.volume.completed,
            "injected": self.injector.stats() if self.injector else None,
            "policy": (self.policy_supervisor.stats()
                       if self.policy_supervisor else None),
            "monitors": self.kernel.supervisor.stats(),
            "guardrail": self.monitor.stats(),
        }


def shortest_queue_policy(inference_ns=2_000):
    """The demo's stand-in learned policy: pick the shallowest queue.

    Flagged ``used_model=True`` so fallback engagement is visible in the
    volume's model-submit accounting, with a small nonzero ``inference_ns``
    so ``stall`` faults have a latency to inflate.
    """
    def pick(volume):
        index = min(range(len(volume.devices)),
                    key=lambda i: volume.devices[i].queue_depth)
        return PickDecision(index, used_model=True, predicted_fast=True,
                            inference_ns=inference_ns)

    return pick


def run_faults_demo_scenario(seed=11, duration_s=12, rate_ios=800,
                             fault_plan=None, breaker_config=None,
                             slow_call_ns=1_000_000):
    """A small self-contained chaos run for ``grctl faults`` and the bench.

    A synthetic storage kernel serves a Poisson read workload through a
    shortest-queue stand-in policy (installed as ``storage.shortest_queue``)
    watched by one TIMER guardrail over ``io_latency_us.tavg``.  The pick
    slot is wrapped in a :class:`PolicySupervisor` (validator + 1 ms
    slow-call ceiling), so any ``fault_plan`` aimed at the slot or the store
    exercises the full containment path: inject -> contain -> trip ->
    REPLACE with round-robin -> re-arm.  Without a plan the run is a clean
    deterministic baseline.
    """
    from repro.faults.supervisor import PolicySupervisor, make_pick_validator

    kernel, devices, volume = build_storage_kernel(seed=seed)
    kernel.store.derive_time_average("io_latency_us", window=2 * SECOND)
    volume.install_policy("storage.shortest_queue", shortest_queue_policy())
    monitor = kernel.guardrails.load(FAULTS_DEMO_SPEC, cooldown=2 * SECOND)

    injector = None
    if fault_plan is not None:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(kernel, fault_plan).install()
    supervisor = PolicySupervisor(
        kernel, volume.PICK_SLOT, volume.FALLBACK_NAME,
        config=breaker_config,
        validator=make_pick_validator(len(devices)),
        slow_call_ns=slow_call_ns)

    PoissonWorkload(kernel, volume,
                    [(duration_s * SECOND, rate_ios)]).start()
    kernel.run(until=duration_s * SECOND)
    return FaultsDemoResult(kernel, volume, monitor, injector, supervisor)

"""Plain-text tables and series, matching how the paper reports results."""


def format_table(headers, rows, title=None):
    """Fixed-width table; values are stringified with sensible float formats."""
    def fmt(value):
        if isinstance(value, float):
            if value == 0 or 0.01 <= abs(value) < 100_000:
                return "{:.3f}".format(value).rstrip("0").rstrip(".")
            return "{:.3g}".format(value)
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name, pairs, unit="", points_per_line=8):
    """A labeled (x, y) series as aligned text, several points per line."""
    lines = ["{}{}".format(name, " ({})".format(unit) if unit else "")]
    chunk = []
    for x, y in pairs:
        chunk.append("{}:{:.0f}".format(x, y))
        if len(chunk) == points_per_line:
            lines.append("  " + "  ".join(chunk))
            chunk = []
    if chunk:
        lines.append("  " + "  ".join(chunk))
    return "\n".join(lines)

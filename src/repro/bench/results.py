"""BENCH.json — the machine-readable benchmark result format and its gate.

Scenario contract
-----------------
Every ``benchmarks/bench_*.py`` module exposes::

    def scenarios() -> list[(scenario_id, fn)]

where ``fn(report=None)`` runs one seed-pinned, deterministic experiment and
returns a flat dict of metrics (numbers, strings, bools, None).  The
reserved ``"_info"`` key may hold a dict of *non-deterministic* extras
(wall-clock timings, host facts); everything else must be byte-identical
across runs and across ``--jobs`` values, which is what makes the
regression gate meaningful.  ``report``, when given, is a
``(name, text) -> path`` sink for the human-readable artifact that
historically went to ``benchmarks/out/``.

The :func:`scenario` decorator attaches scheduling metadata (``quick``
tier membership, relative ``cost`` for longest-first sharding, the pinned
``seed``) as plain function attributes so ``scenarios()`` stays a list of
``(id, fn)`` pairs.

File format (schema version 1)
------------------------------
::

    {
      "schema_version": 1,
      "git_sha": "abc123..." | null,
      "created_unix": 1720000000.0,
      "tier": "full" | "quick",
      "jobs": 4,
      "filter": null,
      "scenarios": [            // sorted by id
        {
          "id": "fig2_linnos",
          "module": "bench_fig2_linnos",
          "status": "ok" | "error" | "crash" | "timeout",
          "attempts": 1,
          "seed": 2 | null,
          "wall_time_s": 5.1,   // excluded from gating/determinism
          "metrics": {...},     // deterministic, gated
          "info": {...},        // non-deterministic, never gated
          "error": null | "traceback..."
        }, ...
      ]
    }
"""

import json
import math
import subprocess

SCHEMA_VERSION = 1

#: scenario-result fields that may legitimately differ between two runs of
#: the same tree (the determinism tests and the gate both ignore them).
NONDETERMINISTIC_FIELDS = ("wall_time_s", "info", "attempts", "error")

INFO_KEY = "_info"


def scenario(fn=None, *, quick=True, cost=1.0, seed=None):
    """Attach scheduling metadata to a scenario function.

    Usable bare (``@scenario``) or with arguments
    (``@scenario(quick=False, cost=8.0, seed=2)``).
    """
    def apply(func):
        func.quick = quick
        func.cost = cost
        func.seed = seed
        return func

    return apply(fn) if fn is not None else apply


def git_sha(cwd=None):
    """The current commit sha, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def make_document(scenario_results, tier, jobs, filter_expr=None,
                  sha=None, created_unix=None):
    """Merge per-scenario results into one canonically-ordered document."""
    return {
        "schema_version": SCHEMA_VERSION,
        "git_sha": sha,
        "created_unix": created_unix,
        "tier": tier,
        "jobs": jobs,
        "filter": filter_expr,
        "scenarios": sorted(scenario_results, key=lambda r: r["id"]),
    }


def save_document(document, path):
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_document(path):
    """Load and schema-check a BENCH.json; raise ValueError on mismatch."""
    with open(path) as handle:
        document = json.load(handle)
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            "unsupported BENCH.json schema_version {!r} (expected {})".format(
                version, SCHEMA_VERSION))
    if not isinstance(document.get("scenarios"), list):
        raise ValueError("BENCH.json has no scenario list")
    return document


def deterministic_view(document):
    """The subset of a document that must be identical across runs.

    Strips the run-level envelope (jobs, timestamps, sha) and every
    per-scenario field named in :data:`NONDETERMINISTIC_FIELDS`; what is
    left — id, module, seed, status, metrics — is what the determinism
    tests compare byte-for-byte.
    """
    view = []
    for result in document["scenarios"]:
        view.append({key: value for key, value in sorted(result.items())
                     if key not in NONDETERMINISTIC_FIELDS})
    return view


class Regression:
    """One gate failure: a metric moved beyond tolerance, or went missing."""

    def __init__(self, scenario_id, metric, baseline, current, detail):
        self.scenario_id = scenario_id
        self.metric = metric
        self.baseline = baseline
        self.current = current
        self.detail = detail

    def __repr__(self):
        return "Regression({}.{}: {})".format(
            self.scenario_id, self.metric, self.detail)

    def render(self):
        return "GATE  {}.{}: {} (baseline={!r}, current={!r})".format(
            self.scenario_id, self.metric, self.detail,
            self.baseline, self.current)


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_to_baseline(current, baseline, tolerance, selected_ids=None):
    """Gate ``current`` against ``baseline``; return a list of Regressions.

    Scenarios are seed-pinned and deterministic, so the gate is
    *two-sided*: any gated metric drifting beyond ``tolerance`` (relative,
    against the baseline magnitude) fails, improvements included —
    improvements are ratified by refreshing the committed baseline, which
    keeps it honest.  Non-numeric metrics must match exactly.  ``_info``
    content and wall times are never gated.

    ``selected_ids`` scopes the gate to a deliberately restricted run
    (``--quick``, ``--filter``): baseline scenarios outside the selection
    are skipped, so one committed full-tier baseline serves every tier.
    With ``selected_ids=None`` (an unrestricted run) every ok baseline
    scenario must be present — a deleted benchmark fails the gate until
    the baseline is refreshed deliberately.  Scenarios newly added in
    ``current`` pass silently until baselined.
    """
    regressions = []
    current_by_id = {r["id"]: r for r in current["scenarios"]}
    for base in baseline["scenarios"]:
        sid = base["id"]
        if selected_ids is not None and sid not in selected_ids:
            continue
        if base.get("status") != "ok":
            continue  # a broken baseline entry cannot anchor a comparison
        run = current_by_id.get(sid)
        if run is None:
            regressions.append(Regression(
                sid, "<scenario>", "present", "missing",
                "scenario missing from current run"))
            continue
        if run.get("status") != "ok":
            tail = (run.get("error") or "").strip().splitlines()
            regressions.append(Regression(
                sid, "<scenario>", "ok", run.get("status"),
                "scenario did not complete: {}".format(
                    tail[-1] if tail else "no detail")))
            continue
        base_metrics = base.get("metrics") or {}
        run_metrics = run.get("metrics") or {}
        for name, base_value in sorted(base_metrics.items()):
            if name == INFO_KEY:
                continue
            if name not in run_metrics:
                regressions.append(Regression(
                    sid, name, base_value, None, "metric missing"))
                continue
            value = run_metrics[name]
            failure = _compare_metric(base_value, value, tolerance)
            if failure:
                regressions.append(
                    Regression(sid, name, base_value, value, failure))
    return regressions


def _compare_metric(base_value, value, tolerance):
    """None when within tolerance, else a human-readable reason."""
    if _is_number(base_value) and _is_number(value):
        if math.isnan(base_value) and math.isnan(value):
            return None
        if math.isnan(base_value) != math.isnan(value):
            return "NaN mismatch"
        delta = abs(value - base_value)
        # Relative against the baseline magnitude; a zero baseline falls
        # back to an absolute tolerance so 0 -> 0.0001 still passes a
        # 0.15 gate but 0 -> 1 does not.
        scale = abs(base_value) if base_value else 1.0
        if delta > tolerance * scale:
            return "drifted {:.1%} (> {:.1%} tolerance)".format(
                delta / scale, tolerance)
        return None
    if type(base_value) is not type(value) or base_value != value:
        return "value changed"
    return None

"""Generic sharded process pool shared by the bench and eval runners.

One worker *process* per task: a per-task timeout can kill a hung run
without poisoning a shared pool, and a crashed interpreter (OOM,
segfaulting native code) costs one retry instead of the whole suite.
Results travel over a pipe rather than a ``multiprocessing.Queue``:
``Pipe.send`` writes synchronously before the child exits, so the parent
can never observe a dead child whose result is still stuck in a queue
feeder thread.

The pool knows nothing about benchmarks or eval episodes — callers hand
it :class:`PoolTask` entries whose ``target`` is a picklable module-level
callable ``target(*args, conn)`` that sends exactly one
``(status, payload)`` tuple before exiting.  ``repro.bench.runner`` and
``repro.eval.runner`` both schedule through here, so the supervision
discipline (poll with deadline, retry-once on crash/timeout) is written
once.
"""

import multiprocessing
import time

DEFAULT_TIMEOUT_S = 300.0
_POLL_S = 0.05


class PoolTask:
    """One unit of pool work: a picklable target plus its arguments.

    ``cost`` is a relative duration estimate used only for progress
    output; callers order the task list themselves (longest-first packs
    the pool best).
    """

    __slots__ = ("id", "target", "args", "cost")

    def __init__(self, task_id, target, args=(), cost=1.0):
        self.id = task_id
        self.target = target
        self.args = tuple(args)
        self.cost = float(cost)

    def __repr__(self):
        return "PoolTask({!r}, cost={:g})".format(self.id, self.cost)


class _Job:
    def __init__(self, task, attempt):
        self.task = task
        self.attempt = attempt
        self.conn = None
        self.process = None
        self.deadline = None

    def start(self, timeout_s):
        self.conn, child_conn = multiprocessing.Pipe(duplex=False)
        self.process = multiprocessing.Process(
            target=self.task.target,
            args=self.task.args + (child_conn,),
            daemon=True)
        self.process.start()
        child_conn.close()
        self.deadline = time.monotonic() + timeout_s

    def receive(self):
        """(status, payload) if the child has reported, else None."""
        try:
            if self.conn.poll():
                return self.conn.recv()
        except (EOFError, OSError):
            pass
        return None


def run_pool(tasks, jobs=1, timeout_s=DEFAULT_TIMEOUT_S, progress=None):
    """Run tasks on up to ``jobs`` worker processes; return outcome dicts.

    Tasks start in list order.  Per-task failure policy: a status the
    child itself reported (``"ok"``/``"error"`` by convention) is final
    and recorded immediately; a crashed or timed-out worker is retried
    once (``status="crash"``/``"timeout"`` if the retry also dies, with
    the diagnostic under ``payload["error"]``).  The returned list is
    sorted by task id regardless of completion order, so merged output is
    canonical.
    """
    jobs = max(1, int(jobs))
    progress = progress or (lambda message: None)
    pending = list(tasks)
    running = []
    outcomes = []

    def finish(job, status, payload):
        outcomes.append({
            "id": job.task.id,
            "attempts": job.attempt,
            "status": status,
            "payload": payload,
        })
        progress("{:<9} {} (attempt {}, {:.2f}s)".format(
            status, job.task.id, job.attempt,
            (payload or {}).get("wall_time_s") or 0.0))

    def retry_or_fail(job, status, payload):
        if job.attempt == 1:
            progress("{:<9} {} (attempt 1) — retrying once".format(
                status, job.task.id))
            replacement = _Job(job.task, attempt=2)
            replacement.start(timeout_s)
            running.append(replacement)
        else:
            finish(job, status, payload)

    while pending or running:
        while pending and len(running) < jobs:
            job = _Job(pending.pop(0), attempt=1)
            job.start(timeout_s)
            progress("start     {} (cost {:g})".format(
                job.task.id, job.task.cost))
            running.append(job)
        time.sleep(_POLL_S)
        for job in running[:]:
            received = job.receive()
            alive = job.process.is_alive()
            if received is None and not alive:
                received = job.receive()  # result raced the exit check
            if received is not None:
                status, payload = received
                job.process.join()
                running.remove(job)
                finish(job, status, payload)
            elif not alive:
                # Died without reporting: crashed interpreter.
                job.process.join()
                running.remove(job)
                retry_or_fail(job, "crash", {
                    "error": "worker exited with code {}".format(
                        job.process.exitcode)})
            elif time.monotonic() > job.deadline:
                job.process.terminate()
                job.process.join(5)
                if job.process.is_alive():
                    job.process.kill()
                    job.process.join()
                running.remove(job)
                retry_or_fail(job, "timeout", {
                    "error": "task exceeded {:.0f}s timeout".format(
                        timeout_s)})
    return sorted(outcomes, key=lambda outcome: outcome["id"])


__all__ = ["DEFAULT_TIMEOUT_S", "PoolTask", "run_pool"]

"""Reference (training-time) distribution of a model feature.

Built once from the training set, a :class:`ReferenceDistribution` is what a
P1 in-distribution guardrail compares live inputs against.  It stores the
range, quartiles, and a histogram of each feature, and can manufacture an
empty live histogram with matching bins.
"""

import math

from repro.detect.histogram import Histogram


class ReferenceDistribution:
    """Summary of one feature's training distribution."""

    def __init__(self, name, lo, hi, quartiles, histogram):
        self.name = name
        self.lo = lo
        self.hi = hi
        self.quartiles = tuple(quartiles)
        self.histogram = histogram

    @classmethod
    def from_samples(cls, name, samples, bins=32, margin=0.05):
        """Summarize training ``samples``, padding the range by ``margin``.

        The pad keeps benign values just past the observed extremes from
        registering as out-of-range.
        """
        values = sorted(float(v) for v in samples)
        if len(values) < 4:
            raise ValueError(
                "need at least 4 samples to build a reference for {!r}, got {}"
                .format(name, len(values))
            )
        lo, hi = values[0], values[-1]
        span = hi - lo
        if span == 0:
            span = abs(hi) if hi != 0 else 1.0
        lo -= span * margin
        hi += span * margin
        histogram = Histogram(lo, hi, bins)
        histogram.update_many(values)
        quartiles = tuple(_percentile(values, q) for q in (25, 50, 75))
        return cls(name, lo, hi, quartiles, histogram)

    @property
    def iqr(self):
        q25, _, q75 = self.quartiles
        iqr = q75 - q25
        return iqr if iqr > 0 else max(abs(q75), 1.0)

    def new_live_histogram(self):
        """An empty histogram with identical binning, for live samples."""
        return Histogram(self.histogram.lo, self.histogram.hi, self.histogram.bins)

    def contains(self, value):
        return self.lo <= value <= self.hi

    def __repr__(self):
        return "ReferenceDistribution({!r}, [{:.3g}, {:.3g}])".format(
            self.name, self.lo, self.hi
        )


def _percentile(ordered, q):
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac

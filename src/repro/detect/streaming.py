"""Constant-memory streaming estimators."""

import collections
import math


class MovingAverage:
    """Trailing moving average over the last ``window`` samples."""

    def __init__(self, window):
        if window < 1:
            raise ValueError("window must be >= 1, got {}".format(window))
        self.window = window
        self._buf = collections.deque()
        self._sum = 0.0

    def update(self, value):
        """Add a sample and return the current average."""
        self._buf.append(value)
        self._sum += value
        if len(self._buf) > self.window:
            self._sum -= self._buf.popleft()
        return self.value

    @property
    def value(self):
        if not self._buf:
            return math.nan
        return self._sum / len(self._buf)

    @property
    def count(self):
        return len(self._buf)

    def reset(self):
        self._buf.clear()
        self._sum = 0.0


class Ewma:
    """Exponentially weighted moving average with smoothing factor ``alpha``."""

    def __init__(self, alpha):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1], got {}".format(alpha))
        self.alpha = alpha
        self._value = None

    def update(self, value):
        if self._value is None:
            self._value = float(value)
        else:
            self._value = self.alpha * value + (1.0 - self.alpha) * self._value
        return self._value

    @property
    def value(self):
        return math.nan if self._value is None else self._value

    def reset(self):
        self._value = None


class MeanVariance:
    """Welford's online mean/variance."""

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value):
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        return self._mean

    @property
    def mean(self):
        return math.nan if self.count == 0 else self._mean

    @property
    def variance(self):
        """Sample variance (n-1 denominator); NaN until two samples."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stddev(self):
        v = self.variance
        return math.nan if math.isnan(v) else math.sqrt(v)

    def merge(self, other):
        """Combine with another estimator (parallel Welford merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            return self
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        return self

    def reset(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0


class SummaryDigest:
    """Mergeable count/mean/variance/min/max summary of a sample set.

    The cross-host form of a :class:`MeanVariance`: hosts summarize their
    local samples (a :class:`~repro.detect.windows.SlidingWindow`, a raw
    stream), ship the five-number digest, and the aggregator merges digests
    instead of raw samples.  The mean/variance merge is the same parallel
    Welford combination :meth:`MeanVariance.merge` uses; min/max merge
    exactly.
    """

    __slots__ = ("count", "_mean", "_m2", "_min", "_max")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    @classmethod
    def from_values(cls, values):
        digest = cls()
        for value in values:
            digest.update(value)
        return digest

    def update(self, value):
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        return self._mean

    @property
    def mean(self):
        return math.nan if self.count == 0 else self._mean

    @property
    def variance(self):
        """Sample variance (n-1 denominator); NaN until two samples."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def min(self):
        return math.nan if self.count == 0 else self._min

    @property
    def max(self):
        return math.nan if self.count == 0 else self._max

    def merge(self, other):
        """Combine with another digest (parallel Welford merge + min/max)."""
        if not isinstance(other, SummaryDigest):
            raise ValueError(
                "cannot merge SummaryDigest with {}".format(
                    type(other).__name__))
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return self
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        return self

    def to_dict(self):
        """JSON-friendly form (NaN-free: empty digests report nulls)."""
        if self.count == 0:
            return {"count": 0, "mean": None, "variance": None,
                    "min": None, "max": None}
        variance = self.variance
        return {
            "count": self.count,
            "mean": self._mean,
            "variance": None if math.isnan(variance) else variance,
            "min": self._min,
            "max": self._max,
        }

    def to_json(self):
        """Exact state dump: ``from_json(to_json(d))`` is *identical* to ``d``.

        Unlike :meth:`to_dict` (derived values for humans), this carries the
        raw Welford accumulators, so round-tripping through JSON changes
        nothing — Python's JSON floats are repr-exact.  Empty digests omit
        the infinite min/max sentinels (JSON has no ``inf``).
        """
        if self.count == 0:
            return {"count": 0}
        return {"count": self.count, "mean": self._mean, "m2": self._m2,
                "min": self._min, "max": self._max}

    @classmethod
    def from_json(cls, data):
        digest = cls()
        if data["count"]:
            digest.count = int(data["count"])
            digest._mean = float(data["mean"])
            digest._m2 = float(data["m2"])
            digest._min = float(data["min"])
            digest._max = float(data["max"])
        return digest


class WindowedMean:
    """Mean of samples observed within a trailing *time* window.

    The estimator backing properties phrased as "the average X over every
    N seconds": samples carry the caller's virtual-time stamps and age out
    of the window on each query.
    """

    def __init__(self, window):
        if window <= 0:
            raise ValueError("window must be positive, got {}".format(window))
        self.window = window
        self._samples = collections.deque()  # (time, value)
        self._sum = 0.0

    def observe(self, time, value):
        self._samples.append((time, float(value)))
        self._sum += value
        self._evict(time)

    def _evict(self, now):
        cutoff = now - self.window
        while self._samples and self._samples[0][0] <= cutoff:
            _, old = self._samples.popleft()
            self._sum -= old

    def mean(self, now):
        """Mean over the window; NaN when no samples remain."""
        self._evict(now)
        if not self._samples:
            return math.nan
        return self._sum / len(self._samples)

    def count(self, now):
        self._evict(now)
        return len(self._samples)


class RateCounter:
    """Events-per-window rate over a trailing time window.

    Used for properties like "false-submit rate over the last second".
    Timestamps are the caller's virtual-time integers; the counter evicts
    events older than ``window`` on every query.
    """

    def __init__(self, window):
        if window <= 0:
            raise ValueError("window must be positive, got {}".format(window))
        self.window = window
        self._events = collections.deque()  # (time, hit: bool)
        self._hits = 0  # running numerator: rate() is O(evictions), not O(n)

    def observe(self, time, hit):
        """Record one event at ``time``; ``hit`` marks the numerator."""
        hit = bool(hit)
        self._events.append((time, hit))
        if hit:
            self._hits += 1
        self._evict(time)

    def observe_batch(self, times, hits):
        """Record many events at once; exact-equivalent to observe() calls.

        ``times`` must be non-decreasing (the caller's event order).  The
        numerator is an integer running count and evictions are monotone in
        time, so appending the whole batch and evicting once at the final
        timestamp leaves *identical* state to n sequential observes — this
        is what lets the batched ingest lane stay bit-exact.
        """
        events = self._events
        hit_count = 0
        last = None
        for last, hit in zip(times, hits):
            hit = bool(hit)
            events.append((last, hit))
            if hit:
                hit_count += 1
        if last is None:
            return
        self._hits += hit_count
        self._evict(last)

    def _evict(self, now):
        cutoff = now - self.window
        events = self._events
        while events and events[0][0] <= cutoff:
            _, hit = events.popleft()
            if hit:
                self._hits -= 1

    def merge(self, other):
        """Interleave ``other``'s events into this counter (exact).

        Windows must match — merging counters with different trailing
        windows would silently change eviction semantics, so that raises
        ``ValueError``.  Both event logs are time-ordered, so the merge is a
        single two-pointer pass; ties take this counter's event first, which
        keeps the merge deterministic regardless of call order per side.
        Returns ``self`` for chaining.
        """
        if not isinstance(other, RateCounter) or other.window != self.window:
            raise ValueError(
                "cannot merge RateCounter(window={}) with {!r}".format(
                    self.window, other))
        if not other._events:
            return self
        merged = collections.deque()
        left, right = self._events, other._events
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i][0] <= right[j][0]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
        while i < len(left):
            merged.append(left[i])
            i += 1
        while j < len(right):
            merged.append(right[j])
            j += 1
        self._events = merged
        self._hits += other._hits
        return self

    def to_json(self):
        """Exact state dump: the window plus every live ``(time, hit)`` event.

        The event log *is* the counter's state, so the round trip is exact;
        the running hit count is recomputed on load rather than trusted.
        """
        return {"window": self.window,
                "events": [[time, 1 if hit else 0]
                           for time, hit in self._events]}

    @classmethod
    def from_json(cls, data):
        counter = cls(data["window"])
        for time, hit in data["events"]:
            hit = bool(hit)
            counter._events.append((time, hit))
            if hit:
                counter._hits += 1
        return counter

    def rate(self, now):
        """Fraction of events in the window that were hits (0.0 when empty)."""
        self._evict(now)
        if not self._events:
            return 0.0
        return self._hits / len(self._events)

    def count(self, now):
        """Total events currently inside the window."""
        self._evict(now)
        return len(self._events)

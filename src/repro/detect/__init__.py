"""Streaming statistics and drift detection.

Guardrail rules are expressed over aggregates ("average page-fault latency
over every 10 seconds", "accuracy over a window", "inputs in distribution").
This package provides the constant-memory streaming estimators those
aggregates are built from: moving averages, EWMA, Welford variance, P²
streaming quantiles, fixed-bin histograms, rate counters, sliding windows,
and distribution-drift metrics (KS, PSI, range/quartile checks).
"""

from repro.detect.drift import (
    DriftReport,
    ks_statistic,
    population_stability_index,
    quartile_shift,
    range_violation_fraction,
)
from repro.detect.histogram import Histogram
from repro.detect.quantiles import P2Quantile
from repro.detect.reference import ReferenceDistribution
from repro.detect.streaming import Ewma, MeanVariance, MovingAverage, RateCounter
from repro.detect.windows import SlidingWindow, TumblingWindow

__all__ = [
    "DriftReport",
    "ks_statistic",
    "population_stability_index",
    "quartile_shift",
    "range_violation_fraction",
    "Histogram",
    "P2Quantile",
    "ReferenceDistribution",
    "Ewma",
    "MeanVariance",
    "MovingAverage",
    "RateCounter",
    "SlidingWindow",
    "TumblingWindow",
]

"""Sliding and tumbling sample windows."""

import collections
import math


class SlidingWindow:
    """The last ``size`` samples, with cheap summary statistics."""

    def __init__(self, size):
        if size < 1:
            raise ValueError("size must be >= 1, got {}".format(size))
        self.size = size
        self._buf = collections.deque(maxlen=size)
        # Running first/second moments so mean()/variance() are O(1) per
        # call instead of re-summing the window (P1/P3 rules query them on
        # every check).
        self._sum = 0.0
        self._sumsq = 0.0

    def update(self, value):
        buf = self._buf
        if len(buf) == self.size:
            evicted = buf[0]
            self._sum -= evicted
            self._sumsq -= evicted * evicted
        buf.append(value)
        self._sum += value
        self._sumsq += value * value

    def __len__(self):
        return len(self._buf)

    @property
    def full(self):
        return len(self._buf) == self.size

    def values(self):
        return list(self._buf)

    def mean(self):
        if not self._buf:
            return math.nan
        return self._sum / len(self._buf)

    def min(self):
        return math.nan if not self._buf else min(self._buf)

    def max(self):
        return math.nan if not self._buf else max(self._buf)

    def variance(self):
        n = len(self._buf)
        if n < 2:
            return math.nan
        # Sample variance off the running moments; the max() clamps the
        # small negative values floating-point cancellation can produce.
        mean = self._sum / n
        return max((self._sumsq - n * mean * mean) / (n - 1), 0.0)

    def quartiles(self):
        """(q25, q50, q75) of the current window, NaNs when empty."""
        if not self._buf:
            return (math.nan, math.nan, math.nan)
        ordered = sorted(self._buf)
        return tuple(_percentile(ordered, q) for q in (25, 50, 75))

    def fraction(self, predicate):
        """Fraction of window samples satisfying ``predicate``."""
        if not self._buf:
            return 0.0
        return sum(1 for v in self._buf if predicate(v)) / len(self._buf)

    def summary(self):
        """Mergeable :class:`~repro.detect.streaming.SummaryDigest` of the
        current window contents.

        This is how windows cross host boundaries: raw samples stay local,
        the five-number digest ships, and digests from many hosts merge into
        one fleet-wide summary.
        """
        from repro.detect.streaming import SummaryDigest

        return SummaryDigest.from_values(self._buf)

    def reset(self):
        self._buf.clear()
        self._sum = 0.0
        self._sumsq = 0.0


class TumblingWindow:
    """Accumulates samples, then rotates: each ``close()`` starts fresh.

    Matches properties phrased as "over every 10 seconds": the monitor feeds
    samples continuously and calls ``close()`` on its TIMER tick, getting
    back the summary of the completed window.
    """

    def __init__(self):
        self._values = []
        self.closed_windows = 0

    def update(self, value):
        self._values.append(value)

    def __len__(self):
        return len(self._values)

    def close(self):
        """Finish the current window; returns a summary dict."""
        values = self._values
        self._values = []
        self.closed_windows += 1
        if not values:
            return {"count": 0, "mean": math.nan, "min": math.nan, "max": math.nan}
        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
        }


def _percentile(ordered, q):
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return _lerp(ordered[lo], ordered[hi], frac)


def _lerp(a, b, frac):
    """Interpolate between ordered samples ``a <= b``, order-safely.

    ``a*(1-frac) + b*frac`` is not monotone at the edge of the float grid
    (denormals make q25 > q50 for identical samples).  The single-product
    form is monotone in ``frac``; the clamp pins the result inside
    ``[a, b]`` so percentiles of a sorted sample are always ordered.
    """
    value = a + frac * (b - a)
    return a if value < a else (b if value > b else value)

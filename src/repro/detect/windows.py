"""Sliding and tumbling sample windows."""

import collections
import math


class SlidingWindow:
    """The last ``size`` samples, with cheap summary statistics."""

    def __init__(self, size):
        if size < 1:
            raise ValueError("size must be >= 1, got {}".format(size))
        self.size = size
        self._buf = collections.deque(maxlen=size)

    def update(self, value):
        self._buf.append(value)

    def __len__(self):
        return len(self._buf)

    @property
    def full(self):
        return len(self._buf) == self.size

    def values(self):
        return list(self._buf)

    def mean(self):
        if not self._buf:
            return math.nan
        return sum(self._buf) / len(self._buf)

    def min(self):
        return math.nan if not self._buf else min(self._buf)

    def max(self):
        return math.nan if not self._buf else max(self._buf)

    def variance(self):
        n = len(self._buf)
        if n < 2:
            return math.nan
        mean = self.mean()
        return sum((v - mean) ** 2 for v in self._buf) / (n - 1)

    def quartiles(self):
        """(q25, q50, q75) of the current window, NaNs when empty."""
        if not self._buf:
            return (math.nan, math.nan, math.nan)
        ordered = sorted(self._buf)
        return tuple(_percentile(ordered, q) for q in (25, 50, 75))

    def fraction(self, predicate):
        """Fraction of window samples satisfying ``predicate``."""
        if not self._buf:
            return 0.0
        return sum(1 for v in self._buf if predicate(v)) / len(self._buf)

    def reset(self):
        self._buf.clear()


class TumblingWindow:
    """Accumulates samples, then rotates: each ``close()`` starts fresh.

    Matches properties phrased as "over every 10 seconds": the monitor feeds
    samples continuously and calls ``close()`` on its TIMER tick, getting
    back the summary of the completed window.
    """

    def __init__(self):
        self._values = []
        self.closed_windows = 0

    def update(self, value):
        self._values.append(value)

    def __len__(self):
        return len(self._values)

    def close(self):
        """Finish the current window; returns a summary dict."""
        values = self._values
        self._values = []
        self.closed_windows += 1
        if not values:
            return {"count": 0, "mean": math.nan, "min": math.nan, "max": math.nan}
        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
        }


def _percentile(ordered, q):
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac

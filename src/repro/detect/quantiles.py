"""P² streaming quantile estimation (Jain & Chlamtac, 1985).

Tracks one quantile with five markers in O(1) memory — the right tool for
in-kernel percentile tracking where storing all samples is out of the
question.
"""

import math


class P2Quantile:
    """Streaming estimate of the ``q`` quantile (0 < q < 1)."""

    def __init__(self, q):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1), got {}".format(q))
        self.q = q
        self._initial = []
        self._heights = None
        self._positions = None
        self._desired = None
        self._increments = None
        self.count = 0

    def update(self, value):
        """Add a sample; returns the current estimate (NaN until 5 samples)."""
        self.count += 1
        if self._heights is None:
            self._initial.append(float(value))
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
                self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
            return self.value

        h = self._heights
        if value < h[0]:
            h[0] = float(value)
            k = 0
        elif value >= h[4]:
            h[4] = float(value)
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if value < h[i]:
                    k = i - 1
                    break
            else:
                k = 3

        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        for i in range(1, 4):
            d = self._desired[i] - self._positions[i]
            n = self._positions
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (d <= -1.0 and n[i - 1] - n[i] < -1.0):
                d = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, d)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, d)
                n[i] += d
        return self.value

    def _parabolic(self, i, d):
        h, n = self._heights, self._positions
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i, d):
        h, n = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self):
        """Current quantile estimate; NaN before five samples arrive."""
        if self._heights is not None:
            return self._heights[2]
        if not self._initial:
            return math.nan
        from repro.detect.windows import _lerp

        ordered = sorted(self._initial)
        rank = self.q * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return ordered[lo]
        return _lerp(ordered[lo], ordered[hi], rank - lo)

"""P² streaming quantile estimation (Jain & Chlamtac, 1985).

Tracks one quantile with five markers in O(1) memory — the right tool for
in-kernel percentile tracking where storing all samples is out of the
question.
"""

import math


class P2Quantile:
    """Streaming estimate of the ``q`` quantile (0 < q < 1)."""

    def __init__(self, q):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1), got {}".format(q))
        self.q = q
        self._initial = []
        self._heights = None
        self._positions = None
        self._desired = None
        self._increments = None
        self.count = 0

    def update(self, value):
        """Add a sample; returns the current estimate (NaN until 5 samples)."""
        self.count += 1
        if self._heights is None:
            self._initial.append(float(value))
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
                self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
            return self.value

        h = self._heights
        if value < h[0]:
            h[0] = float(value)
            k = 0
        elif value >= h[4]:
            h[4] = float(value)
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if value < h[i]:
                    k = i - 1
                    break
            else:
                k = 3

        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        for i in range(1, 4):
            d = self._desired[i] - self._positions[i]
            n = self._positions
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (d <= -1.0 and n[i - 1] - n[i] < -1.0):
                d = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, d)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, d)
                n[i] += d
        return self.value

    def _parabolic(self, i, d):
        h, n = self._heights, self._positions
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i, d):
        h, n = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    def merge(self, other):
        """Fold another estimator of the *same* quantile into this one.

        P² keeps five markers, not samples, so the merge is approximate:
        the extreme markers (observed min/max) merge exactly, the middle
        markers combine as count-weighted averages of the two sketches'
        height estimates, and marker positions add (each side's position is
        its local rank estimate for that quantile level, and ranks are
        additive under concatenation).  The result is tolerance-bounded
        against a single sketch fed the concatenated stream — good enough
        for fleet-wide tail-latency gates, not for exact accounting (use
        :meth:`~repro.detect.histogram.Histogram.merge` when exactness
        matters).  Returns ``self`` for chaining.
        """
        if not isinstance(other, P2Quantile) or other.q != self.q:
            raise ValueError(
                "cannot merge P2Quantile(q={}) with {!r}".format(
                    self.q, other))
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._initial = list(other._initial)
            self._heights = None if other._heights is None else list(other._heights)
            self._positions = (None if other._positions is None
                               else list(other._positions))
            self._desired = None if other._desired is None else list(other._desired)
            self._increments = (None if other._increments is None
                                else list(other._increments))
            return self
        if self._heights is None and other._heights is None:
            # Both still buffering: replay the pooled samples in sorted
            # order (deterministic regardless of merge order).
            values = sorted(self._initial + other._initial)
            self.__init__(self.q)
            for value in values:
                self.update(value)
            return self
        if self._heights is None or other._heights is None:
            # One side initialized: adopt it, then replay the buffered
            # samples of the other side through the normal update path.
            small = self._initial if self._heights is None else other._initial
            big = other if self._heights is None else self
            state = (big.count, list(big._heights), list(big._positions),
                     list(big._desired), list(big._increments))
            self.count, self._heights, self._positions, self._desired, \
                self._increments = state
            self._initial = []
            for value in sorted(small):
                self.update(value)
            return self
        c1, c2 = self.count, other.count
        total = c1 + c2
        h1, h2 = self._heights, other._heights
        # Extremes are exact; interior markers are count-weighted blends of
        # the two local estimates of the same quantile level.
        heights = [
            min(h1[0], h2[0]),
            (h1[1] * c1 + h2[1] * c2) / total,
            (h1[2] * c1 + h2[2] * c2) / total,
            (h1[3] * c1 + h2[3] * c2) / total,
            max(h1[4], h2[4]),
        ]
        heights.sort()  # enforce marker monotonicity after blending
        positions = [a + b for a, b in zip(self._positions, other._positions)]
        positions[0] = 1.0
        positions[4] = float(total)
        for i in range(1, 5):  # strictly increasing, inside [1, total]
            if positions[i] <= positions[i - 1]:
                positions[i] = positions[i - 1] + 1.0
        for i in range(3, -1, -1):
            if positions[i] >= positions[i + 1]:
                positions[i] = positions[i + 1] - 1.0
        q = self.q
        self.count = total
        self._heights = heights
        self._positions = positions
        # Canonical desired positions at n samples (the running form adds
        # `increments` once per update; closed form = initial + (n-5)*inc).
        extra = total - 5
        self._desired = [
            1.0,
            1.0 + 2.0 * q + extra * (q / 2.0),
            1.0 + 4.0 * q + extra * q,
            3.0 + 2.0 * q + extra * ((1.0 + q) / 2.0),
            float(total),
        ]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        return self

    def to_json(self):
        """Exact marker-state dump: ``from_json(to_json(p))`` is identical.

        Both phases serialize — the pre-marker sample buffer verbatim, the
        marker phase as the five heights/positions/desired arrays.  All
        floats survive JSON repr-exactly, so a round-tripped sketch produces
        bit-identical estimates and merges.
        """
        state = {"q": self.q, "count": self.count,
                 "initial": list(self._initial)}
        if self._heights is not None:
            state["heights"] = list(self._heights)
            state["positions"] = list(self._positions)
            state["desired"] = list(self._desired)
        return state

    @classmethod
    def from_json(cls, data):
        sketch = cls(data["q"])
        sketch.count = int(data["count"])
        sketch._initial = [float(v) for v in data["initial"]]
        if "heights" in data:
            q = sketch.q
            sketch._heights = [float(v) for v in data["heights"]]
            sketch._positions = [float(v) for v in data["positions"]]
            sketch._desired = [float(v) for v in data["desired"]]
            sketch._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        return sketch

    @property
    def value(self):
        """Current quantile estimate; NaN before five samples arrive."""
        if self._heights is not None:
            return self._heights[2]
        if not self._initial:
            return math.nan
        from repro.detect.windows import _lerp

        ordered = sorted(self._initial)
        rank = self.q * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return ordered[lo]
        return _lerp(ordered[lo], ordered[hi], rank - lo)

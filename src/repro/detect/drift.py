"""Distribution drift metrics over histograms.

The paper's P1 property says model output should be used only while inputs
stay in-distribution, checked by "tracking statistical properties of the
input features (range, quartiles, etc.) and periodically ensuring they match
training data".  These functions implement those checks over
:class:`repro.detect.histogram.Histogram` pairs.
"""

import math


def population_stability_index(reference, live):
    """PSI between a reference histogram and a live histogram.

    PSI < 0.1 is conventionally "no shift", 0.1-0.25 "moderate", > 0.25
    "major shift".
    """
    _require_compatible(reference, live)
    psi = 0.0
    for p_ref, p_live in zip(reference.proportions(), live.proportions()):
        psi += (p_live - p_ref) * math.log(p_live / p_ref)
    return psi


def ks_statistic(reference, live):
    """Kolmogorov–Smirnov statistic (max CDF gap) between two histograms."""
    _require_compatible(reference, live)
    return max(abs(a - b) for a, b in zip(reference.cdf(), live.cdf()))


def range_violation_fraction(live):
    """Fraction of live samples outside the reference [lo, hi] range."""
    return live.out_of_range_fraction()


def quartile_shift(reference_quartiles, live_quartiles, scale):
    """Largest absolute quartile shift, normalized by ``scale``.

    ``reference_quartiles`` / ``live_quartiles`` are (q25, q50, q75) tuples;
    ``scale`` is typically the reference IQR so the result is unit-free.
    """
    if scale <= 0:
        raise ValueError("scale must be positive, got {}".format(scale))
    return max(
        abs(live - ref) / scale
        for ref, live in zip(reference_quartiles, live_quartiles)
    )


class DriftReport:
    """Bundle of drift metrics for one feature, with a single verdict."""

    def __init__(self, feature, psi, ks, out_of_range, psi_threshold=0.25,
                 ks_threshold=0.2, range_threshold=0.05):
        self.feature = feature
        self.psi = psi
        self.ks = ks
        self.out_of_range = out_of_range
        self.psi_threshold = psi_threshold
        self.ks_threshold = ks_threshold
        self.range_threshold = range_threshold

    @property
    def drifted(self):
        return (
            self.psi > self.psi_threshold
            or self.ks > self.ks_threshold
            or self.out_of_range > self.range_threshold
        )

    @classmethod
    def from_histograms(cls, feature, reference, live, **thresholds):
        return cls(
            feature,
            psi=population_stability_index(reference, live),
            ks=ks_statistic(reference, live),
            out_of_range=range_violation_fraction(live),
            **thresholds,
        )

    def __repr__(self):
        return (
            "DriftReport({!r}, psi={:.4f}, ks={:.4f}, oor={:.4f}, drifted={})"
            .format(self.feature, self.psi, self.ks, self.out_of_range, self.drifted)
        )


def _require_compatible(reference, live):
    if not reference.compatible_with(live):
        raise ValueError(
            "histograms are not comparable: [{}, {}]x{} vs [{}, {}]x{}".format(
                reference.lo, reference.hi, reference.bins,
                live.lo, live.hi, live.bins,
            )
        )

"""Fixed-bin histogram for distribution comparisons.

Used by the in-distribution property (P1): the training pipeline records a
reference histogram of each input feature; at run time the monitor feeds the
live feature values into a matching histogram and compares the two with PSI
or the KS statistic.
"""

import math


class Histogram:
    """Counts over ``bins`` equal-width bins spanning ``[lo, hi]``.

    Values outside the range land in dedicated underflow/overflow bins so
    out-of-range mass is visible rather than silently clipped.
    """

    def __init__(self, lo, hi, bins):
        if not lo < hi:
            raise ValueError("need lo < hi, got [{}, {}]".format(lo, hi))
        if bins < 1:
            raise ValueError("bins must be >= 1, got {}".format(bins))
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = bins
        self._width = (self.hi - self.lo) / bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.total = 0

    def update(self, value):
        self.total += 1
        if value < self.lo:
            self.underflow += 1
        elif value >= self.hi:
            self.overflow += 1
        else:
            index = int((value - self.lo) / self._width)
            # Guard the hi-edge float case.
            if index == self.bins:
                index -= 1
            self.counts[index] += 1

    def update_many(self, values):
        for value in values:
            self.update(value)

    def proportions(self, floor=1e-6):
        """Per-bin fractions including under/overflow, floored away from 0.

        The floor keeps PSI finite when a bin is empty on one side.
        """
        denominator = max(self.total, 1)
        raw = [self.underflow] + self.counts + [self.overflow]
        return [max(c / denominator, floor) for c in raw]

    def cdf(self):
        """Cumulative fractions at each bin edge (underflow first)."""
        denominator = max(self.total, 1)
        out = []
        acc = 0
        for c in [self.underflow] + self.counts + [self.overflow]:
            acc += c
            out.append(acc / denominator)
        return out

    def out_of_range_fraction(self):
        if self.total == 0:
            return 0.0
        return (self.underflow + self.overflow) / self.total

    def quantile(self, q):
        """Approximate ``q`` quantile (0 <= q <= 1) from the bin counts.

        Linear interpolation inside the containing bin; mass in the
        underflow/overflow bins maps to the range edges (the histogram does
        not know how far out it lies).  NaN when empty.  Error is bounded by
        one bin width, which is what makes merged fleet-wide quantiles
        trustworthy: counts merge exactly, so the merged estimate equals the
        single-histogram estimate of the concatenated stream.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1], got {}".format(q))
        if self.total == 0:
            return math.nan
        target = q * self.total
        if target <= self.underflow:
            return self.lo
        acc = self.underflow
        for index, count in enumerate(self.counts):
            if count and acc + count >= target:
                frac = (target - acc) / count
                return self.lo + self._width * (index + frac)
            acc += count
        return self.hi

    def merge(self, other):
        """Fold ``other``'s counts into this histogram (exact).

        Both histograms must share bounds and bin count; mismatched sketches
        raise ``ValueError`` rather than silently blending incomparable
        distributions.  Returns ``self`` for chaining.
        """
        if not self.compatible_with(other):
            raise ValueError(
                "cannot merge incompatible histograms: "
                "[{}, {}]x{} vs [{}, {}]x{}".format(
                    self.lo, self.hi, self.bins,
                    getattr(other, "lo", "?"), getattr(other, "hi", "?"),
                    getattr(other, "bins", "?")))
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.total += other.total
        return self

    def to_json(self):
        """Exact state dump; counts are integers so the round trip is exact."""
        return {"lo": self.lo, "hi": self.hi, "bins": self.bins,
                "counts": list(self.counts), "underflow": self.underflow,
                "overflow": self.overflow}

    @classmethod
    def from_json(cls, data):
        histogram = cls(data["lo"], data["hi"], data["bins"])
        counts = [int(c) for c in data["counts"]]
        if len(counts) != histogram.bins:
            raise ValueError(
                "histogram state has {} counts for {} bins".format(
                    len(counts), histogram.bins))
        histogram.counts = counts
        histogram.underflow = int(data["underflow"])
        histogram.overflow = int(data["overflow"])
        histogram.total = (sum(counts) + histogram.underflow
                           + histogram.overflow)
        return histogram

    def compatible_with(self, other):
        return (
            isinstance(other, Histogram)
            and math.isclose(self.lo, other.lo)
            and math.isclose(self.hi, other.hi)
            and self.bins == other.bins
        )

    def reset(self):
        self.counts = [0] * self.bins
        self.underflow = 0
        self.overflow = 0
        self.total = 0

"""Guardrail-quality eval — the CI smoke set, scored and gated.

Runs the quick tier of the labelled eval dataset (``eval/dataset.jsonl``)
exactly as CI's ``eval-smoke`` job does, then scores it: overall
accuracy, trip precision/recall, and the per-gate-axis false-trip
counts behind the calibrated :class:`~repro.fleet.rollout.GateConfig`
defaults.  Every metric is deterministic — a guardrail whose verdict
drifts on any labelled episode shows up as a baseline diff here before
it shows up as a flaky CI gate.

Episodes run inline (not through ``run_eval``): bench scenarios already
execute inside pool workers, which are daemonic and cannot nest a pool.
"""

import time

from repro.bench.report import format_table
from repro.bench.results import INFO_KEY, scenario
from repro.eval.calibrate import calibrate
from repro.eval.dataset import load_dataset
from repro.eval.runner import DOCUMENT_SCHEMA, run_episode, select_episodes
from repro.eval.score import score_results


def _group_rows(scores):
    rows = []
    for name, cell in sorted(scores["by_group"].items()):
        rows.append([
            name,
            "{}/{}".format(cell["correct"], cell["n"]),
            "{:.2f}".format(cell["precision"]),
            "{:.2f}".format(cell["recall"]),
            ", ".join(cell["guardrail"]) or "-",
        ])
    return rows


# Every episode's seed is pinned in the dataset itself; 11 is the first
# host-episode seed, declared so the seed-pinning contract holds.
@scenario(cost=2.0, seed=11)
def run_eval_quick(report=None):
    started = time.perf_counter()
    header, episodes = load_dataset()
    results = [run_episode(episode)
               for episode in select_episodes(episodes, tier="quick")]
    wall_s = time.perf_counter() - started

    scores = score_results(results)
    trip = scores["trip_detection"]
    document = {"schema": DOCUMENT_SCHEMA, "episodes": results}
    calibration = calibrate(document)

    metrics = {
        "dataset_version": header["dataset_version"],
        "episodes": scores["n"],
        "correct": scores["correct"],
        "accuracy": round(scores["accuracy"], 6),
        "trip_precision": round(trip["precision"], 6),
        "trip_recall": round(trip["recall"], 6),
        "trip_f1": round(trip["f1"], 6),
        "false_trips": trip["fp"],
        "missed_trips": trip["fn"],
        "calibration_self_consistent": (
            calibration["verification"]["passed"]
            and not calibration["changed"]),
        INFO_KEY: {"wall_s": wall_s},
    }
    for axis, cell in sorted(scores["fleet_axis_false_trips"].items()):
        metrics["axis_{}_false_trips".format(axis)] = cell["false_trips"]

    if report is not None:
        lines = [format_table(
            ["group", "correct", "precision", "recall", "guardrail"],
            _group_rows(scores),
            title="eval quick tier (dataset v{}, {} episodes)".format(
                header["dataset_version"], scores["n"]))]
        wrong = [r for r in results if not r["correct"]]
        lines.append("wrong verdicts: {}".format(
            ", ".join(r["id"] for r in wrong) if wrong else "none"))
        report("eval_quick", "\n".join(lines))
    return metrics


def scenarios():
    return [("eval_quick", run_eval_quick)]


def test_eval_quick(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_eval_quick, kwargs={"report": report_sink}, rounds=1,
        iterations=1)

    # -- shape assertions --------------------------------------------------
    # The smoke set must separate cleanly: every labelled verdict correct,
    # no false or missed trips, and the committed gate defaults must be
    # exactly what calibration reproduces from the recorded measurements.
    assert metrics["accuracy"] == 1.0
    assert metrics["false_trips"] == 0
    assert metrics["missed_trips"] == 0
    assert metrics["calibration_self_consistent"] is True
    for axis in ("violation", "inconclusive", "p95"):
        assert metrics["axis_{}_false_trips".format(axis)] == 0

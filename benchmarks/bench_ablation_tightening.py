"""Ablation §3.3 — fixed relaxed threshold vs auto-tightened threshold.

Deploy the page-fault-latency guardrail relaxed (50 ms).  A regression that
raises fault latency to ~5 ms hides indefinitely under the relaxed bound;
the auto-tightened guardrail has converged to the observed envelope and
catches it within a couple of checks.
"""

from repro.bench.report import format_table
from repro.bench.results import scenario
from repro.core.tightening import AutoTightener
from repro.kernel import Kernel
from repro.kernel.mm import PageFaultHandler
from repro.sim.units import MILLISECOND, SECOND

INITIAL_MS = 50.0
REGRESSION_AT = 10 * SECOND
DURATION = 20 * SECOND


def _build_spec(threshold):
    return (
        "guardrail fault-latency {{\n"
        "  trigger: {{ TIMER(start_time, 1s) }},\n"
        "  rule:    {{ LOAD(mm.page_fault_latency_ms.avg) <= {} }},\n"
        "  action:  {{ REPORT() }}\n"
        "}}\n"
    ).format(threshold)


def _run(tightened):
    kernel = Kernel(seed=53)
    faults = kernel.attach("mm", PageFaultHandler(kernel))
    tightener = None
    if tightened:
        tightener = AutoTightener(
            kernel.guardrails, "fault-latency", "mm.page_fault_latency_ms",
            _build_spec, initial_threshold=INITIAL_MS, interval=1 * SECOND,
            quantile=0.99, margin=3.0,
        ).start()
    else:
        kernel.guardrails.load(_build_spec(INITIAL_MS))

    # The regression: promotions start stalling (fragmentation jumps), which
    # lifts average fault latency to a few ms — bad, but far below 50 ms.
    kernel.functions.register_implementation("mm.sometimes", lambda ctx: True)
    kernel.engine.schedule_at(REGRESSION_AT, faults.set_fragmentation, 0.12)
    kernel.engine.schedule_at(
        REGRESSION_AT, kernel.functions.replace,
        "mm.promote_hugepage", "mm.sometimes")

    def fault_loop(step=0):
        faults.fault(address=step)
        if kernel.now < DURATION:
            kernel.engine.schedule(4 * MILLISECOND, fault_loop, step + 1)

    fault_loop()
    kernel.run(until=DURATION)
    monitor = kernel.guardrails.get("fault-latency")
    first = monitor.violations[0].time if monitor.violations else None
    return {
        "threshold": tightener.threshold if tightener else INITIAL_MS,
        "violations": monitor.violation_count,
        "delay_s": None if first is None else (first - REGRESSION_AT) / SECOND,
        "tighten_count": tightener.tighten_count if tightener else 0,
    }


@scenario(cost=0.5, seed=53)
def run_tightening_ablation(report=None):
    results = {
        "fixed relaxed (50 ms)": _run(tightened=False),
        "auto-tightened": _run(tightened=True),
    }
    metrics = {}
    for name, prefix in (("fixed relaxed (50 ms)", "relaxed"),
                         ("auto-tightened", "tightened")):
        r = results[name]
        metrics[prefix + "_threshold_ms"] = round(r["threshold"], 6)
        metrics[prefix + "_violations"] = r["violations"]
        metrics[prefix + "_delay_s"] = r["delay_s"]
        metrics[prefix + "_tighten_count"] = r["tighten_count"]

    if report is not None:
        rows = [
            [name, round(r["threshold"], 3), r["tighten_count"],
             r["violations"], r["delay_s"]]
            for name, r in results.items()
        ]
        report("ablation_tightening", format_table(
            ["deployment", "final threshold ms", "tightenings", "violations",
             "detection delay s"],
            rows,
            title="§3.3 ablation: relaxed vs auto-tightened threshold "
                  "(regression at t=10s)"))
    return metrics


def scenarios():
    return [("ablation_tightening", run_tightening_ablation)]


def test_tightening_ablation(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_tightening_ablation, kwargs={"report": report_sink},
        rounds=1, iterations=1)

    assert metrics["relaxed_violations"] == 0   # regression hides forever
    assert metrics["tightened_violations"] >= 1
    assert (metrics["tightened_delay_s"] is not None
            and metrics["tightened_delay_s"] <= 3)
    assert metrics["tightened_threshold_ms"] < 1.0  # converged near reality

"""Figure 1 (left table) — the P1–P6 property taxonomy, one scenario each.

For every property row the benchmark runs a healthy phase (the guardrail
stays quiet), injects the misbehavior the row describes, and checks that
the monitor detects it and the paired action takes effect.  Each scenario
regenerates one row of the table as text output and returns the row's
numbers as a metric dict for ``grctl bench``.
"""

import numpy as np

from repro.bench.report import format_table
from repro.bench.results import scenario
from repro.bench.scenarios import build_storage_kernel
from repro.core.properties import (
    decision_overhead,
    decision_quality,
    fairness_liveness,
    in_distribution,
    output_bounds,
    robustness,
)
from repro.kernel import Kernel
from repro.kernel.cache import KvCache, random_evict
from repro.kernel.mm import MemoryAllocator
from repro.kernel.net import BottleneckLink
from repro.kernel.sched import CpuScheduler
from repro.kernel.storage import (
    DeviceProfile,
    PoissonWorkload,
    schedule_profile_change,
)
from repro.policies.cachepol import attach_learned_cache_policy
from repro.policies.ccpol import install_learned_cc
from repro.policies.linnos import (
    FEATURE_NAMES,
    LinnosPolicy,
    collect_training_data,
    train_linnos_model,
)
from repro.policies.prealloc import LearnedPreallocPolicy, clamped_prealloc
from repro.policies.readahead import (
    FixedReadahead,
    LearnedReadahead,
    ReadaheadSimulator,
)
from repro.policies.schedpol import attach_learned_sched_policy
from repro.sim.units import MILLISECOND, SECOND


def _row_report(report, name, rows):
    if report is None:
        return
    report(name, format_table(
        ["phase", "signal", "violations", "action effect"], rows,
        title=name))


@scenario(quick=False, cost=4.0, seed=21)
def run_p1_in_distribution(report=None):
    """P1 — inputs drift out of the training distribution -> REPORT+RETRAIN."""
    # Train the model on a round-robin collection run.
    kernel, devices, volume = build_storage_kernel(seed=21)
    workload = PoissonWorkload(kernel, volume, [(10 * SECOND, 900)])
    features, labels = collect_training_data(
        kernel, volume, workload.start, 10 * SECOND)
    model = train_linnos_model(features, labels, epochs=10, seed=21)

    # Deployment feedback shifts the input distribution (the policy
    # steers traffic away from slow devices, so it mostly sees clean
    # histories), so P1 references must be calibrated from a known-good
    # *canary* window of the deployed policy — not from the training set.
    kernel, devices, volume = build_storage_kernel(seed=31)
    canary_rows = []

    def record_canary(hook, now, payload):
        for device in volume.devices:
            canary_rows.append(device.features())

    probe = volume.submit_hook.attach(record_canary, name="canary")
    policy = LinnosPolicy(kernel, model)
    volume.install_policy("storage.linnos", policy)
    PoissonWorkload(kernel, volume, [(16 * SECOND, 1200)]).start()
    kernel.run(until=4 * SECOND)
    probe.detach()

    from repro.detect.reference import ReferenceDistribution

    canary = np.array(canary_rows)
    references = [
        ReferenceDistribution.from_samples(name, canary[:, i], bins=8)
        for i, name in enumerate(FEATURE_NAMES)
    ]
    from repro.policies.base import InputDistributionTracker

    # LinnOS features are spiky and episode-correlated, so windows must
    # span several GC episodes and the threshold sits well above the
    # textbook 0.25 — §3.3's point that some thresholds "require system
    # knowledge" (or auto-tightening).
    policy.instrumentation.inputs = InputDistributionTracker(
        kernel.store, "linnos", references, publish_every=4096)
    monitor = kernel.guardrails.load(
        in_distribution("linnos", psi_threshold=0.7, oor_threshold=0.2))

    kernel.run(until=9 * SECOND)
    healthy_violations = monitor.violation_count
    healthy_psi = kernel.store.load("linnos.input_psi_max")
    schedule_profile_change(kernel, devices, DeviceProfile.post_drift(),
                            9 * SECOND)
    kernel.run(until=17 * SECOND)

    metrics = {
        "healthy_violations": healthy_violations,
        "healthy_psi_max": round(healthy_psi or 0.0, 6),
        "drifted_violations": monitor.violation_count,
        "drifted_psi_max": round(
            kernel.store.load("linnos.input_psi_max"), 6),
        "retrains_queued": kernel.retrain_queue.accepted_count,
    }
    _row_report(report, "fig1_p1_in_distribution", [
        ["healthy", "psi_max={:.3f}".format(metrics["healthy_psi_max"]),
         healthy_violations, "-"],
        ["drifted", "psi_max={:.3f}".format(metrics["drifted_psi_max"]),
         metrics["drifted_violations"],
         "{} retrain request(s) queued".format(metrics["retrains_queued"])],
    ])
    return metrics


@scenario(cost=1.5, seed=22)
def run_p2_robustness(report=None):
    """P2 — learned CC output swings under noise; AIMD does not."""
    kernel = Kernel(seed=22)
    link = kernel.attach("net", BottleneckLink(
        kernel, capacity_mbps=100.0, noise_std=0.05,
        rtt=20 * MILLISECOND))
    install_learned_cc(kernel, link, train_capacity=100.0)
    monitor = kernel.guardrails.load(
        robustness("learned_cc", sensitivity_threshold=25.0),
        cooldown=5 * SECOND)
    link.start()
    kernel.run(until=12 * SECOND)

    # Reference: the AIMD fallback probed the same way.
    from repro.policies.base import SensitivityProbe
    from repro.kernel.net.link import aimd_controller

    aimd = aimd_controller()
    probe = SensitivityProbe(
        kernel.store, "aimd",
        lambda row: np.array([aimd({
            "rate_mbps": row[0], "delivered_mbps": row[1],
            "loss": max(row[2], 0.0),
        }) - row[0]]),
        probe_every=1)
    rng = np.random.default_rng(0)
    for _ in range(64):
        rate = rng.uniform(10, 90)
        probe.maybe_probe(np.array([rate, rate, 0.0]), 2.0)

    metrics = {
        "learned_sensitivity_mbps": round(
            kernel.store.load("learned_cc.output_sensitivity"), 6),
        "aimd_sensitivity_mbps": round(
            kernel.store.load("aimd.output_sensitivity"), 6),
        "violations": monitor.violation_count,
        "retrains_queued": kernel.retrain_queue.accepted_count,
    }
    _row_report(report, "fig1_p2_robustness", [
        ["learned CC",
         "sensitivity={:.1f} Mbps".format(metrics["learned_sensitivity_mbps"]),
         metrics["violations"],
         "{} retrain queued".format(metrics["retrains_queued"])],
        ["AIMD fallback",
         "sensitivity={:.2f} Mbps".format(metrics["aimd_sensitivity_mbps"]),
         0, "-"],
    ])
    return metrics


@scenario(cost=0.2, seed=23)
def run_p3_output_bounds(report=None):
    """P3 — out-of-bounds grants caught at the mm.alloc hook -> REPLACE."""
    kernel = Kernel(seed=23)
    alloc = kernel.attach("mm", MemoryAllocator(kernel, total_pages=500))
    learned = LearnedPreallocPolicy(horizon=8.0)
    kernel.functions.register_implementation("mm.learned", learned)
    kernel.functions.register_implementation("mm.safe",
                                             clamped_prealloc(learned))
    kernel.functions.replace("mm.prealloc_size", "mm.learned")
    monitor = kernel.guardrails.load(output_bounds(
        "mm", "mm.alloc",
        "granted <= available && granted >= requested",
        "mm.prealloc_size", "mm.safe"))

    def burst():
        # Steep exponential ramp: the trend extrapolation overshoots.
        for size in [10, 30, 90, 270]:
            alloc.allocate(size)
            if alloc.used_pages > 250:
                alloc.free(alloc.used_pages)

    for _ in range(3):
        alloc.allocate(10)  # steady phase
    healthy = monitor.violation_count
    burst()                 # extrapolation blowup
    oob_at_trip = alloc.out_of_bounds_grants
    burst()                 # after REPLACE: clamped fallback

    metrics = {
        "healthy_violations": healthy,
        "violations": monitor.violation_count,
        "oob_grants_at_trip": oob_at_trip,
        "oob_grants_total": alloc.out_of_bounds_grants,
    }
    _row_report(report, "fig1_p3_output_bounds", [
        ["steady", "grants in bounds", healthy, "-"],
        ["burst", "{} out-of-bounds grant(s)".format(oob_at_trip),
         metrics["violations"],
         "REPLACEd with clamped fallback; no further OOB ({} total)".format(
             metrics["oob_grants_total"])],
    ])
    return metrics


@scenario(cost=1.5, seed=24)
def run_p4_decision_quality(report=None):
    """P4 — learned cache falls below the random baseline -> REPLACE."""
    kernel = Kernel(seed=24)
    cache = kernel.attach("cache", KvCache(kernel, capacity=32,
                                           window=2 * SECOND))
    cache.add_shadow("random",
                     random_evict(kernel.engine.rng.get("shadow")))
    attach_learned_cache_policy(kernel, cache)
    monitor = kernel.guardrails.load(decision_quality(
        "cache", "cache.hit_rate", "cache.random.hit_rate", margin=0.05,
        fallback_slot="cache.evict", fallback_impl="cache.random"),
        cooldown=2 * SECOND)

    rng = np.random.default_rng(0)
    hot = ["hot{}".format(i) for i in range(16)]
    serial = [0]

    def access(adversarial=False):
        if not adversarial or rng.random() < 0.5:
            cache.access(hot[int(rng.integers(len(hot)))])
        else:
            serial[0] += 1
            dead = "dead{}".format(serial[0])
            cache.access(dead)
            cache.access(dead)

    def loop():
        access(adversarial=kernel.now >= 6 * SECOND)
        if kernel.now < 14 * SECOND:
            kernel.engine.schedule(2 * MILLISECOND, loop)

    loop()
    kernel.run(until=6 * SECOND)
    healthy = (monitor.violation_count,
               kernel.store.load("cache.hit_rate"),
               kernel.store.load("cache.random.hit_rate"))
    kernel.run(until=14 * SECOND)

    metrics = {
        "healthy_violations": healthy[0],
        "healthy_hit_rate": round(healthy[1], 6),
        "healthy_random_hit_rate": round(healthy[2], 6),
        "adversarial_hit_rate": round(
            kernel.store.load("cache.hit_rate"), 6),
        "adversarial_random_hit_rate": round(
            kernel.store.load("cache.random.hit_rate"), 6),
        "violations": monitor.violation_count,
        "swap_count": kernel.functions.slot("cache.evict").swap_count,
    }
    _row_report(report, "fig1_p4_decision_quality", [
        ["skewed workload",
         "hit {:.2f} vs random {:.2f}".format(healthy[1], healthy[2]),
         healthy[0], "-"],
        ["dead-pair adversarial",
         "hit {:.2f} vs random {:.2f}".format(
             metrics["adversarial_hit_rate"],
             metrics["adversarial_random_hit_rate"]),
         metrics["violations"],
         "evictor REPLACEd ({} swap(s))".format(metrics["swap_count"])],
    ])
    return metrics


@scenario(cost=0.2, seed=25)
def run_p5_decision_overhead(report=None):
    """P5 — inference cost must be offset by gains (readahead example)."""
    kernel = Kernel(seed=25)
    from repro.core.overhead import InferenceMeter

    meter = InferenceMeter(kernel.store, "readahead", window=64)
    learned = ReadaheadSimulator(LearnedReadahead(), waste_us=20,
                                 decision_us=2.0)
    fixed = ReadaheadSimulator(FixedReadahead(window=8), waste_us=20)
    # Windowed rule: banked gains from the good phase must not mask a
    # regression (the cumulative ledger would take ages to go negative).
    monitor = kernel.guardrails.load(decision_overhead("readahead",
                                                       windowed=True))
    rng = np.random.default_rng(0)

    def replay_run(run_length):
        before_l, before_f = learned.total_cost_us, fixed.total_cost_us
        learned.replay([run_length])
        fixed.replay([run_length])
        gain_us = (fixed.total_cost_us - before_f) - (
            learned.total_cost_us - before_l)
        meter.record_decision(int(learned.decision_us * 1000),
                              int(gain_us * 1000))

    def phase(kind, count, step=0):
        # "long" runs: the learned window wins big over fixed(8).
        # "uniform" runs of exactly 8: the fixed heuristic is already
        # optimal, so the model's gain is ~0 and inference is pure
        # overhead — the case P5 exists for.
        run = int(max(rng.normal(64, 4), 1)) if kind == "long" else 8
        replay_run(run)
        if step < count:
            kernel.engine.schedule(5 * MILLISECOND, phase, kind, count,
                                   step + 1)

    phase("long", 400)
    kernel.run(until=3 * SECOND)
    healthy = (monitor.violation_count,
               kernel.store.load("readahead.net_benefit_window"))
    phase("uniform", 400)
    kernel.run(until=6 * SECOND)

    metrics = {
        "healthy_violations": healthy[0],
        "healthy_net_benefit_ns": round(healthy[1], 3),
        "final_net_benefit_ns": round(
            kernel.store.load("readahead.net_benefit_window"), 3),
        "violations": monitor.violation_count,
    }
    _row_report(report, "fig1_p5_decision_overhead", [
        ["long sequential runs",
         "windowed net benefit +{:.0f} us/decision".format(
             healthy[1] / 1000),
         healthy[0], "-"],
        ["after shift to uniform(8) runs",
         "windowed net benefit {:.1f} us/decision".format(
             metrics["final_net_benefit_ns"] / 1000),
         metrics["violations"], "REPORTed for offline analysis"],
    ])
    return metrics


@scenario(cost=0.6, seed=26)
def run_p6_fairness_liveness(report=None):
    """P6 — learned SJF starves batch work -> REPLACE restores liveness."""
    results = {}
    for guarded in (False, True):
        kernel = Kernel(seed=26)
        sched = kernel.attach("sched", CpuScheduler(kernel))
        attach_learned_sched_policy(kernel, sched)
        sched.spawn("batch", burst_ns=50 * MILLISECOND)
        for i in range(4):
            sched.spawn("short{}".format(i), burst_ns=1 * MILLISECOND)
        monitor = None
        if guarded:
            monitor = kernel.guardrails.load(
                fairness_liveness(max_wait_ms=100.0))
        kernel.run(until=5 * SECOND)
        results[guarded] = (kernel, sched, monitor)

    unguarded_stats = results[False][1].wait_stats()
    guarded_stats = results[True][1].wait_stats()
    metrics = {
        "unguarded_batch_cpu_ms": round(
            unguarded_stats["batch"]["executed_ms"], 3),
        "unguarded_batch_max_wait_ms": round(
            unguarded_stats["batch"]["max_wait_ms"], 3),
        "guarded_batch_cpu_ms": round(
            guarded_stats["batch"]["executed_ms"], 3),
        "guarded_batch_max_wait_ms": round(
            guarded_stats["batch"]["max_wait_ms"], 3),
        "violations": results[True][2].violation_count,
    }
    rows = []
    for guarded, (kernel, sched, monitor) in results.items():
        stats = sched.wait_stats()
        rows.append([
            "guarded" if guarded else "learned SJF only",
            "batch max wait {:.0f} ms".format(stats["batch"]["max_wait_ms"]),
            monitor.violation_count if monitor else 0,
            "batch ran {:.0f} ms of CPU".format(
                stats["batch"]["executed_ms"]),
        ])
    _row_report(report, "fig1_p6_fairness_liveness", rows)
    return metrics


def scenarios():
    return [
        ("fig1_p1_in_distribution", run_p1_in_distribution),
        ("fig1_p2_robustness", run_p2_robustness),
        ("fig1_p3_output_bounds", run_p3_output_bounds),
        ("fig1_p4_decision_quality", run_p4_decision_quality),
        ("fig1_p5_decision_overhead", run_p5_decision_overhead),
        ("fig1_p6_fairness_liveness", run_p6_fairness_liveness),
    ]


def test_p1_in_distribution(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_p1_in_distribution, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    # The first window straddles the canary/monitoring transition, so allow
    # one spurious early violation; drift must add clearly more.
    assert metrics["healthy_violations"] <= 1
    assert metrics["drifted_violations"] >= metrics["healthy_violations"] + 2
    assert metrics["retrains_queued"] >= 1


def test_p2_robustness(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_p2_robustness, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert (metrics["learned_sensitivity_mbps"]
            > metrics["aimd_sensitivity_mbps"] * 5)
    assert metrics["violations"] >= 1


def test_p3_output_bounds(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_p3_output_bounds, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert metrics["healthy_violations"] == 0
    assert metrics["violations"] >= 1
    # The fallback stayed legal: no OOB grants after the REPLACE.
    assert metrics["oob_grants_total"] == metrics["oob_grants_at_trip"]


def test_p4_decision_quality(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_p4_decision_quality, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert metrics["healthy_violations"] == 0
    assert (metrics["healthy_hit_rate"]
            >= metrics["healthy_random_hit_rate"] - 0.05)
    assert metrics["violations"] >= 1
    assert metrics["swap_count"] >= 2  # install + guardrail replace


def test_p5_decision_overhead(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_p5_decision_overhead, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert metrics["healthy_violations"] == 0
    assert metrics["healthy_net_benefit_ns"] > 0
    assert metrics["violations"] >= 1
    assert (metrics["final_net_benefit_ns"]
            < metrics["healthy_net_benefit_ns"])


def test_p6_fairness_liveness(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_p6_fairness_liveness, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert metrics["unguarded_batch_cpu_ms"] < 100
    assert metrics["guarded_batch_cpu_ms"] > 500
    assert metrics["violations"] >= 1

"""Monitor overhead scaling and compilation-path cost.

Backs the framework's P5/verifier story with numbers:

- simulated in-kernel overhead scales linearly in guardrail count and rule
  cost, and stays a tiny fraction of system time at sane check rates;
- the host-side compilation pipeline (parse -> validate -> compile ->
  verify) is fast enough for interactive incremental deployment;
- feature-store SAVE/LOAD — the per-event hot path — costs microseconds of
  real time;
- the repro.trace tracepoints cost one predicate check when tracing is off,
  and sampling recovers most of the full-tracing overhead when it is on.

Wall-clock measurements are environment-noisy, so the runner-facing
metrics here are the *simulated* costs and the traced event counts (both
deterministic); real-time ratios ride along under ``_info``.
"""

import time

from repro.bench.report import format_table
from repro.bench.results import scenario
from repro.core.compiler import GuardrailCompiler
from repro.kernel import Kernel
from repro.sim.units import SECOND
from repro.trace import TRACER, tracing

SIMPLE_RULE = "LOAD(m0) <= 1"
COSTLY_RULE = (
    "LOAD(m0) + LOAD(m1) + LOAD(m2) + LOAD(m3) + LOAD(m4) "
    "<= max(LOAD(m5), LOAD(m6)) * 2"
)


def _spec(name, rule, interval="100ms"):
    return (
        "guardrail {} {{ trigger: {{ TIMER(start_time, {}) }}, "
        "rule: {{ {} }}, action: {{ REPORT() }} }}".format(name, interval, rule)
    )


def _scaling_run(guardrail_count, rule):
    kernel = Kernel(seed=55)
    for i in range(7):
        kernel.store.save("m{}".format(i), 0)
    for g in range(guardrail_count):
        kernel.guardrails.load(_spec("g{}".format(g), rule))
    kernel.run(until=10 * SECOND)
    total = kernel.guardrails.total_overhead_ns()
    return total, total / (10 * SECOND)


@scenario(cost=0.3, seed=55)
def run_overhead_scaling(report=None):
    results = {}
    for count in (1, 4, 16):
        for label, rule in (("simple", SIMPLE_RULE),
                            ("costly", COSTLY_RULE)):
            results[(count, label)] = _scaling_run(count, rule)

    metrics = {}
    for (count, label), (total, fraction) in sorted(results.items()):
        metrics["g{}_{}_overhead_ns".format(count, label)] = total
        metrics["g{}_{}_fraction".format(count, label)] = round(fraction, 12)

    if report is not None:
        rows = [
            [count, label, total, "{:.2e}".format(fraction)]
            for (count, label), (total, fraction) in sorted(results.items())
        ]
        report("overhead_scaling", format_table(
            ["guardrails", "rule", "overhead ns / 10s", "fraction of time"],
            rows,
            title="Simulated monitor overhead at 10 Hz checks"))
    return metrics


@scenario(cost=0.1)
def run_compilation_pipeline(report=None):
    compiler = GuardrailCompiler()
    spec = _spec("pipeline", COSTLY_RULE)

    started = time.perf_counter()
    compiled = compiler.compile(spec)
    elapsed_ms = (time.perf_counter() - started) * 1e3

    metrics = {
        "rules": len(compiled.rules),
        "verified_total_cost_ops": compiled.verification.total_cost,
        "estimated_ops_per_s": round(
            compiled.verification.estimated_ops_per_second),
        "_info": {"compile_ms": round(elapsed_ms, 3)},
    }
    if report is not None:
        report("overhead_compile", format_table(
            ["aspect", "value"],
            [
                ["rules", metrics["rules"]],
                ["verified total cost (ops)",
                 metrics["verified_total_cost_ops"]],
                ["estimated ops/s", metrics["estimated_ops_per_s"]],
            ],
            title="Compilation pipeline: parse + validate + compile + verify"))
    return metrics


TRACING_ITERS = 20_000


def _tracing_workload():
    kernel = Kernel(seed=57)
    hook = kernel.hooks.declare("bench.hot")
    hook.attach(lambda name, now, payload: None)
    store = kernel.store
    for i in range(TRACING_ITERS):
        hook.fire(i=i)
        store.save("m", i & 1)
    return kernel


def _tracing_best(repeats=5):
    def timed():
        start = time.perf_counter()
        _tracing_workload()
        return time.perf_counter() - start

    return min(timed() for _ in range(repeats))


@scenario(cost=2.0, seed=57)
def run_tracing_overhead(report=None):
    """repro.trace overhead: off vs. full vs. 1-in-64 sampled.

    The workload hammers exactly the two hottest tracepoints — hook fires
    and feature-store saves — so the ratios bound the tracing tax on any
    real scenario (which spends most of its time elsewhere).
    """
    _tracing_workload()  # warm caches before any timing
    off = _tracing_best()
    with tracing(capacity=1 << 15):
        full = _tracing_best()
        full_events = TRACER.buffer.total
    with tracing(capacity=1 << 15,
                 sample={"hook": 64, "featurestore.save": 64}):
        sampled = _tracing_best()
        sampled_events = TRACER.buffer.total

    results = {
        "off": (off, 1.0),
        "full": (full, full / off),
        "sampled": (sampled, sampled / off),
    }
    metrics = {
        "full_events": full_events,
        "sampled_events": sampled_events,
        "_info": {
            "off_ms": round(off * 1e3, 3),
            "full_ms": round(full * 1e3, 3),
            "sampled_ms": round(sampled * 1e3, 3),
            "full_ratio": round(full / off, 3),
            "sampled_ratio": round(sampled / off, 3),
        },
    }
    if report is not None:
        rows = [
            [mode, "{:.2f} ms".format(seconds * 1e3),
             "{:.2f}x".format(ratio)]
            for mode, (seconds, ratio) in results.items()
        ]
        report("overhead_tracing", format_table(
            ["tracing", "2x{} hot calls".format(TRACING_ITERS), "vs. off"],
            rows,
            title="Tracepoint overhead: off / full / sampled (1-in-64)"))
    return metrics


HOT_PATH_ITERS = 10_000


@scenario(cost=0.3, seed=56)
def run_feature_store_hot_path(report=None):
    kernel = Kernel(seed=56)
    kernel.store.derive_rate("event", window=1 * SECOND, name="event_rate")

    started = time.perf_counter()
    rate = 0.0
    for i in range(1, HOT_PATH_ITERS + 1):
        kernel.store.save("event", i % 2)
        rate = kernel.store.load("event_rate")
    elapsed = time.perf_counter() - started

    return {
        "iterations": HOT_PATH_ITERS,
        "final_event_rate": round(rate, 6),
        "_info": {
            "ns_per_save_load": round(elapsed / HOT_PATH_ITERS * 1e9, 1),
        },
    }


def scenarios():
    return [
        ("overhead_scaling", run_overhead_scaling),
        ("overhead_compile", run_compilation_pipeline),
        ("overhead_tracing", run_tracing_overhead),
        ("featurestore_hotpath", run_feature_store_hot_path),
    ]


def test_overhead_scaling(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_overhead_scaling, kwargs={"report": report_sink},
        rounds=1, iterations=1)

    # Linear-ish scaling in guardrail count...
    assert (metrics["g16_simple_overhead_ns"]
            >= metrics["g1_simple_overhead_ns"] * 10)
    # ...costly rules cost more than simple ones...
    assert (metrics["g4_costly_overhead_ns"]
            > metrics["g4_simple_overhead_ns"])
    # ...and even 16 costly guardrails stay far below 0.1% of system time.
    assert metrics["g16_costly_fraction"] < 1e-3


def test_compilation_pipeline_cost(benchmark, report_sink):
    compiler = GuardrailCompiler()
    spec = _spec("pipeline", COSTLY_RULE)
    compiled = benchmark(compiler.compile, spec)
    assert compiled.name == "pipeline"

    metrics = run_compilation_pipeline(report=report_sink)
    assert metrics["rules"] == 1


def test_tracing_overhead_sweep(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_tracing_overhead, kwargs={"report": report_sink},
        rounds=1, iterations=1)

    # Sampling drops ~63/64 of the event volume per sampled run...
    assert metrics["sampled_events"] * 5 < metrics["full_events"]
    # ...and full tracing on the pure hot path stays within one order of
    # magnitude (wall-clock ratios are environment-noisy; the reproducible
    # claim is the event-volume reduction above).
    assert metrics["_info"]["full_ratio"] < 10


def test_feature_store_hot_path(benchmark):
    kernel = Kernel(seed=56)
    kernel.store.derive_rate("event", window=1 * SECOND, name="event_rate")
    counter = [0]

    def save_and_load():
        counter[0] += 1
        kernel.store.save("event", counter[0] % 2)
        return kernel.store.load("event_rate")

    result = benchmark(save_and_load)
    assert 0.0 <= result <= 1.0

"""Monitor overhead scaling and compilation-path cost.

Backs the framework's P5/verifier story with numbers:

- simulated in-kernel overhead scales linearly in guardrail count and rule
  cost, and stays a tiny fraction of system time at sane check rates;
- the host-side compilation pipeline (parse -> validate -> compile ->
  verify) is fast enough for interactive incremental deployment;
- feature-store SAVE/LOAD — the per-event hot path — costs microseconds of
  real time.
"""

from repro.bench.report import format_table
from repro.core.compiler import GuardrailCompiler
from repro.kernel import Kernel
from repro.sim.units import SECOND

SIMPLE_RULE = "LOAD(m0) <= 1"
COSTLY_RULE = (
    "LOAD(m0) + LOAD(m1) + LOAD(m2) + LOAD(m3) + LOAD(m4) "
    "<= max(LOAD(m5), LOAD(m6)) * 2"
)


def _spec(name, rule, interval="100ms"):
    return (
        "guardrail {} {{ trigger: {{ TIMER(start_time, {}) }}, "
        "rule: {{ {} }}, action: {{ REPORT() }} }}".format(name, interval, rule)
    )


def test_overhead_scaling(benchmark, report_sink):
    def run(guardrail_count, rule):
        kernel = Kernel(seed=55)
        for i in range(7):
            kernel.store.save("m{}".format(i), 0)
        for g in range(guardrail_count):
            kernel.guardrails.load(_spec("g{}".format(g), rule))
        kernel.run(until=10 * SECOND)
        total = kernel.guardrails.total_overhead_ns()
        return total, total / (10 * SECOND)

    def run_all():
        out = {}
        for count in (1, 4, 16):
            for label, rule in (("simple", SIMPLE_RULE),
                                ("costly", COSTLY_RULE)):
                out[(count, label)] = run(count, rule)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [count, label, total, "{:.2e}".format(fraction)]
        for (count, label), (total, fraction) in sorted(results.items())
    ]
    report_sink("overhead_scaling", format_table(
        ["guardrails", "rule", "overhead ns / 10s", "fraction of time"],
        rows,
        title="Simulated monitor overhead at 10 Hz checks"))

    # Linear-ish scaling in guardrail count...
    assert results[(16, "simple")][0] >= results[(1, "simple")][0] * 10
    # ...costly rules cost more than simple ones...
    assert results[(4, "costly")][0] > results[(4, "simple")][0]
    # ...and even 16 costly guardrails stay far below 0.1% of system time.
    assert results[(16, "costly")][1] < 1e-3


def test_compilation_pipeline_cost(benchmark, report_sink):
    compiler = GuardrailCompiler()
    spec = _spec("pipeline", COSTLY_RULE)

    compiled = benchmark(compiler.compile, spec)
    report_sink("overhead_compile", format_table(
        ["aspect", "value"],
        [
            ["rules", len(compiled.rules)],
            ["verified total cost (ops)", compiled.verification.total_cost],
            ["estimated ops/s", round(
                compiled.verification.estimated_ops_per_second)],
        ],
        title="Compilation pipeline: parse + validate + compile + verify"))
    assert compiled.name == "pipeline"


def test_feature_store_hot_path(benchmark):
    kernel = Kernel(seed=56)
    kernel.store.derive_rate("event", window=1 * SECOND, name="event_rate")
    counter = [0]

    def save_and_load():
        counter[0] += 1
        kernel.store.save("event", counter[0] % 2)
        return kernel.store.load("event_rate")

    result = benchmark(save_and_load)
    assert 0.0 <= result <= 1.0

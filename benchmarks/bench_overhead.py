"""Monitor overhead scaling and compilation-path cost.

Backs the framework's P5/verifier story with numbers:

- simulated in-kernel overhead scales linearly in guardrail count and rule
  cost, and stays a tiny fraction of system time at sane check rates;
- the host-side compilation pipeline (parse -> validate -> compile ->
  verify) is fast enough for interactive incremental deployment;
- feature-store SAVE/LOAD — the per-event hot path — costs microseconds of
  real time;
- the repro.trace tracepoints cost one predicate check when tracing is off,
  and sampling recovers most of the full-tracing overhead when it is on.
"""

import time

from repro.bench.report import format_table
from repro.core.compiler import GuardrailCompiler
from repro.kernel import Kernel
from repro.sim.units import SECOND
from repro.trace import TRACER, tracing

SIMPLE_RULE = "LOAD(m0) <= 1"
COSTLY_RULE = (
    "LOAD(m0) + LOAD(m1) + LOAD(m2) + LOAD(m3) + LOAD(m4) "
    "<= max(LOAD(m5), LOAD(m6)) * 2"
)


def _spec(name, rule, interval="100ms"):
    return (
        "guardrail {} {{ trigger: {{ TIMER(start_time, {}) }}, "
        "rule: {{ {} }}, action: {{ REPORT() }} }}".format(name, interval, rule)
    )


def test_overhead_scaling(benchmark, report_sink):
    def run(guardrail_count, rule):
        kernel = Kernel(seed=55)
        for i in range(7):
            kernel.store.save("m{}".format(i), 0)
        for g in range(guardrail_count):
            kernel.guardrails.load(_spec("g{}".format(g), rule))
        kernel.run(until=10 * SECOND)
        total = kernel.guardrails.total_overhead_ns()
        return total, total / (10 * SECOND)

    def run_all():
        out = {}
        for count in (1, 4, 16):
            for label, rule in (("simple", SIMPLE_RULE),
                                ("costly", COSTLY_RULE)):
                out[(count, label)] = run(count, rule)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [count, label, total, "{:.2e}".format(fraction)]
        for (count, label), (total, fraction) in sorted(results.items())
    ]
    report_sink("overhead_scaling", format_table(
        ["guardrails", "rule", "overhead ns / 10s", "fraction of time"],
        rows,
        title="Simulated monitor overhead at 10 Hz checks"))

    # Linear-ish scaling in guardrail count...
    assert results[(16, "simple")][0] >= results[(1, "simple")][0] * 10
    # ...costly rules cost more than simple ones...
    assert results[(4, "costly")][0] > results[(4, "simple")][0]
    # ...and even 16 costly guardrails stay far below 0.1% of system time.
    assert results[(16, "costly")][1] < 1e-3


def test_compilation_pipeline_cost(benchmark, report_sink):
    compiler = GuardrailCompiler()
    spec = _spec("pipeline", COSTLY_RULE)

    compiled = benchmark(compiler.compile, spec)
    report_sink("overhead_compile", format_table(
        ["aspect", "value"],
        [
            ["rules", len(compiled.rules)],
            ["verified total cost (ops)", compiled.verification.total_cost],
            ["estimated ops/s", round(
                compiled.verification.estimated_ops_per_second)],
        ],
        title="Compilation pipeline: parse + validate + compile + verify"))
    assert compiled.name == "pipeline"


def test_tracing_overhead_sweep(benchmark, report_sink):
    """repro.trace overhead: off vs. full vs. 1-in-64 sampled.

    The workload hammers exactly the two hottest tracepoints — hook fires
    and feature-store saves — so the ratios bound the tracing tax on any
    real scenario (which spends most of its time elsewhere).
    """
    ITERS = 20_000

    def workload():
        kernel = Kernel(seed=57)
        hook = kernel.hooks.declare("bench.hot")
        hook.attach(lambda name, now, payload: None)
        store = kernel.store
        for i in range(ITERS):
            hook.fire(i=i)
            store.save("m", i & 1)
        return kernel

    def timed():
        start = time.perf_counter()
        workload()
        return time.perf_counter() - start

    def best(repeats=5):
        return min(timed() for _ in range(repeats))

    def run_all():
        workload()  # warm caches before any timing
        off = best()
        with tracing(capacity=1 << 15):
            full = best()
            full_events = TRACER.buffer.total
        with tracing(capacity=1 << 15,
                     sample={"hook": 64, "featurestore.save": 64}):
            sampled = best()
            sampled_events = TRACER.buffer.total
        return {
            "off": (off, off / off),
            "full": (full, full / off),
            "sampled": (sampled, sampled / off),
            "_events": (full_events, sampled_events),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    full_events, sampled_events = results.pop("_events")
    rows = [
        [mode, "{:.2f} ms".format(seconds * 1e3), "{:.2f}x".format(ratio)]
        for mode, (seconds, ratio) in results.items()
    ]
    report_sink("overhead_tracing", format_table(
        ["tracing", "2x{} hot calls".format(ITERS), "vs. off"],
        rows,
        title="Tracepoint overhead: off / full / sampled (1-in-64)"))

    # Sampling drops ~63/64 of the event volume per sampled run...
    assert sampled_events * 5 < full_events
    # ...and full tracing on the pure hot path stays within one order of
    # magnitude (wall-clock ratios are environment-noisy; the reproducible
    # claim is the event-volume reduction above).
    assert results["full"][1] < 10


def test_feature_store_hot_path(benchmark):
    kernel = Kernel(seed=56)
    kernel.store.derive_rate("event", window=1 * SECOND, name="event_rate")
    counter = [0]

    def save_and_load():
        counter[0] += 1
        kernel.store.save("event", counter[0] % 2)
        return kernel.store.load("event_rate")

    result = benchmark(save_and_load)
    assert 0.0 <= result <= 1.0

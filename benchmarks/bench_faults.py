"""Crash-only guardrails — fault injection contained by supervision.

The chaos counterpart of the observability demo: the same synthetic
storage kernel runs once clean and once under a seeded fault plan (policy
crashes mid-window, then probabilistic corrupt reads under the guardrail's
LOAD key).  The claim being regenerated is the crash-only design point:
every injected fault is contained, the circuit breaker trips and re-arms
at exact virtual times, the A2 REPLACE path swaps in the heuristic
fallback, and the workload completes exactly as many I/Os as the clean
run.
"""

from repro.bench.report import format_table
from repro.bench.results import scenario
from repro.bench.scenarios import run_faults_demo_scenario
from repro.faults.plan import FaultPlan
from repro.sim.units import SECOND

DURATION_S = 10
PLAN_FLAGS = (
    "raise@storage.pick_device:start=3,stop=5",
    "corrupt@io_latency_us.tavg:start=6,stop=8,p=0.5",
)


@scenario(cost=0.5, seed=11)
def run_faults(report=None):
    clean = run_faults_demo_scenario(duration_s=DURATION_S)
    plan = FaultPlan.from_flags(PLAN_FLAGS, seed=11)
    faulted = run_faults_demo_scenario(duration_s=DURATION_S,
                                       fault_plan=plan)

    supervisor = faulted.policy_supervisor
    breaker = supervisor.breaker.snapshot()
    transitions = breaker["transitions"]
    metrics = {
        "clean_completed_ios": clean.completed,
        "faulted_completed_ios": faulted.completed,
        "injected": faulted.injector.injected_count,
        "injected_raise": faulted.injector.injected_by_kind.get("raise", 0),
        "injected_corrupt": faulted.injector.injected_by_kind.get("corrupt", 0),
        "contained_crashes": supervisor.crash_count,
        "fallback_calls": supervisor.fallback_call_count,
        "replaces": supervisor.replace_count,
        "breaker_trips": breaker["trips"],
        "breaker_final_state": breaker["state"],
        "trip_time_us": transitions[0]["time"] // 1000 if transitions else None,
        "rearm_time_us": transitions[1]["time"] // 1000
        if len(transitions) > 1 else None,
        "guardrail_checks": faulted.monitor.check_count,
        "guardrail_inconclusive": faulted.monitor.inconclusive_count,
    }

    if report is not None:
        rows = [["clean", clean.completed, 0, 0, 0],
                ["faulted", faulted.completed,
                 faulted.injector.injected_count, supervisor.crash_count,
                 supervisor.replace_count]]
        lines = [format_table(
            ["run", "completed IOs", "injected", "contained", "replaces"],
            rows, title="chaos demo ({}s, seed 11)".format(DURATION_S))]
        lines.append("breaker timeline:")
        for move in transitions:
            lines.append("  t={:>8.3f}s  {} -> {}".format(
                move["time"] / SECOND, move["from"], move["to"]))
        report("faults_containment", "\n".join(lines))
    return metrics


def scenarios():
    return [("faults_containment", run_faults)]


def test_faults_containment(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_faults, kwargs={"report": report_sink}, rounds=1, iterations=1)

    # -- shape assertions --------------------------------------------------
    # Containment, not survival-by-luck: faults were actually injected, the
    # breaker tripped and came back, and the workload lost nothing.
    assert metrics["injected_raise"] >= 3
    assert metrics["injected_corrupt"] >= 1
    assert metrics["contained_crashes"] == metrics["fallback_calls"]
    assert metrics["replaces"] >= 1
    assert metrics["breaker_final_state"] == "closed"
    assert metrics["faulted_completed_ios"] == metrics["clean_completed_ios"]
    assert 3_000_000 <= metrics["trip_time_us"] < 5_000_000
    assert metrics["rearm_time_us"] == metrics["trip_time_us"] + 1_000_000

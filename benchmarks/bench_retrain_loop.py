"""Extension — the full retraining lifecycle (§3.2's A3, made concrete).

Figure 2 stops at "disable the model".  This benchmark runs the loop the
paper sketches but does not build: the guardrail disables the misbehaving
model *and* queues retraining; the daemon trains on the fresh post-drift
sample buffer and re-enables; a model retrained on unrepresentative data
trips the guardrail again, until one trained on clean fallback-phase data
sticks and beats the fallback.
"""

from repro.bench.report import format_series, format_table
from repro.bench.results import scenario
from repro.bench.scenarios import (
    run_closed_loop_scenario,
    train_default_linnos_model,
)
from repro.sim.units import SECOND

DRIFT_AT_S = 6
DURATION_S = 30


@scenario(quick=False, cost=7.0, seed=2)
def run_retrain_loop(model=None, report=None):
    if model is None:
        model = train_default_linnos_model(seed=1, train_seconds=15)
    result, daemon = run_closed_loop_scenario(model, seed=2,
                                              drift_at_s=DRIFT_AT_S,
                                              duration_s=DURATION_S)
    late_disables = len([
        n for n in result.kernel.reporter.notes_for(kind="SAVE")
        if n["time"] > (DURATION_S - 5) * SECOND])
    metrics = {
        "retrains_completed": daemon.completed_count,
        "ml_enabled_at_end": result.ml_enabled,
        "fallback_phase_us": round(result.mean_between(8, 14), 3),
        "recovered_us": round(result.mean_between(24, 30), 3),
        "late_disables": late_disables,
    }

    if report is not None:
        lines = [format_series("I/O latency, closed loop (per-second mean)",
                               result.per_second_means(), unit="us"), ""]
        events = [
            [n["time"] / SECOND, n["kind"], n["detail"]]
            for n in result.kernel.reporter.notes_for()
            if n["kind"] in ("SAVE", "RETRAIN_START", "RETRAIN_DONE")
        ]
        lines.append(format_table(["t (s)", "event", "detail"], events,
                                  title="lifecycle events"))
        lines.append("")
        lines.append(format_table(
            ["aspect", "value"],
            [
                ["drift injected at", "t={}s".format(DRIFT_AT_S)],
                ["retraining runs completed", metrics["retrains_completed"]],
                ["ml enabled at end", metrics["ml_enabled_at_end"]],
                ["fallback-phase latency (8-14s)",
                 round(metrics["fallback_phase_us"])],
                ["recovered latency (24-30s)",
                 round(metrics["recovered_us"])],
            ],
            title="closed-loop summary"))
        report("retrain_loop", "\n".join(lines))
    return metrics


def scenarios():
    return [("retrain_loop", run_retrain_loop)]


def test_closed_retraining_loop(linnos_model, benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_retrain_loop, kwargs={"model": linnos_model,
                                  "report": report_sink},
        rounds=1, iterations=1)

    assert metrics["retrains_completed"] >= 1
    assert metrics["ml_enabled_at_end"] is True
    assert metrics["recovered_us"] < metrics["fallback_phase_us"]
    # The loop settled: no disables in the last 5 seconds.
    assert metrics["late_disables"] == 0

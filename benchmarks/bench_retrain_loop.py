"""Extension — the full retraining lifecycle (§3.2's A3, made concrete).

Figure 2 stops at "disable the model".  This benchmark runs the loop the
paper sketches but does not build: the guardrail disables the misbehaving
model *and* queues retraining; the daemon trains on the fresh post-drift
sample buffer and re-enables; a model retrained on unrepresentative data
trips the guardrail again, until one trained on clean fallback-phase data
sticks and beats the fallback.
"""

from repro.bench.report import format_series, format_table
from repro.bench.scenarios import run_closed_loop_scenario
from repro.sim.units import SECOND

DRIFT_AT_S = 6
DURATION_S = 30


def test_closed_retraining_loop(linnos_model, benchmark, report_sink):
    def scenario():
        return run_closed_loop_scenario(linnos_model, seed=2,
                                        drift_at_s=DRIFT_AT_S,
                                        duration_s=DURATION_S)

    result, daemon = benchmark.pedantic(scenario, rounds=1, iterations=1)

    lines = [format_series("I/O latency, closed loop (per-second mean)",
                           result.per_second_means(), unit="us"), ""]
    events = [
        [n["time"] / SECOND, n["kind"], n["detail"]]
        for n in result.kernel.reporter.notes_for()
        if n["kind"] in ("SAVE", "RETRAIN_START", "RETRAIN_DONE")
    ]
    lines.append(format_table(["t (s)", "event", "detail"], events,
                              title="lifecycle events"))
    lines.append("")
    lines.append(format_table(
        ["aspect", "value"],
        [
            ["drift injected at", "t={}s".format(DRIFT_AT_S)],
            ["retraining runs completed", daemon.completed_count],
            ["ml enabled at end", result.ml_enabled],
            ["fallback-phase latency (8-14s)",
             round(result.mean_between(8, 14))],
            ["recovered latency (24-30s)",
             round(result.mean_between(24, 30))],
        ],
        title="closed-loop summary"))
    report_sink("retrain_loop", "\n".join(lines))

    assert daemon.completed_count >= 1
    assert result.ml_enabled is True
    assert result.mean_between(24, 30) < result.mean_between(8, 14)
    # The loop settled: no disables in the last 5 seconds.
    late = [n for n in result.kernel.reporter.notes_for(kind="SAVE")
            if n["time"] > (DURATION_S - 5) * SECOND]
    assert late == []

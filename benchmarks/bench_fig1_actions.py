"""Figure 1 (right table) — the A1–A4 action API semantics and cost.

One scenario per action: REPORT records context, REPLACE swaps the policy,
RETRAIN queues (rate-limited) training, DEPRIORITIZE renices/kills tasks.
Each also measures the simulated dispatch cost so the table carries an
overhead column.
"""

from repro.bench.report import format_table
from repro.kernel import Kernel
from repro.kernel.sched import CpuScheduler
from repro.sim.units import MILLISECOND, SECOND


def _spec(action):
    return (
        "guardrail act {{ trigger: {{ TIMER(start_time, 100ms) }}, "
        "rule: {{ LOAD(metric) <= 1 }}, action: {{ {} }} }}".format(action)
    )


def test_a1_report(benchmark, report_sink):
    def scenario():
        kernel = Kernel(seed=41)
        kernel.store.save("metric", 99)
        kernel.store.save("context_value", 7)
        monitor = kernel.guardrails.load(
            _spec("REPORT(LOAD(metric), LOAD(context_value))"))
        kernel.run(until=1 * SECOND)
        return kernel, monitor

    kernel, monitor = benchmark.pedantic(scenario, rounds=1, iterations=1)
    reports = kernel.reporter.reports
    report_sink("fig1_a1_report", format_table(
        ["aspect", "value"],
        [
            ["violations", monitor.violation_count],
            ["reports recorded", len(reports)],
            ["extras captured", str(reports[0]["extras"])],
            ["store snapshot keys", len(reports[0]["store"])],
            ["simulated cost (ns total)", monitor.overhead.simulated_ns],
        ],
        title="A1 REPORT: violation context for offline analysis"))
    assert len(reports) == monitor.violation_count >= 5
    assert reports[0]["extras"]["LOAD(metric)"] == 99


def test_a2_replace(benchmark, report_sink):
    def scenario():
        kernel = Kernel(seed=42)
        decisions = []
        kernel.functions.register("policy", lambda: decisions.append("learned"))
        kernel.functions.register_implementation(
            "fallback", lambda: decisions.append("safe"))
        kernel.store.save("metric", 0)
        monitor = kernel.guardrails.load(_spec("REPLACE(policy, fallback)"))

        def call_policy(step=0):
            kernel.functions.slot("policy")()
            if step < 19:
                kernel.engine.schedule(50 * MILLISECOND, call_policy, step + 1)

        call_policy()
        kernel.engine.schedule(500 * MILLISECOND,
                               kernel.store.save, "metric", 9)
        kernel.run(until=1 * SECOND)
        return kernel, monitor, decisions

    kernel, monitor, decisions = benchmark.pedantic(scenario, rounds=1,
                                                    iterations=1)
    switch = decisions.index("safe")
    report_sink("fig1_a2_replace", format_table(
        ["aspect", "value"],
        [
            ["decisions before swap", switch],
            ["decisions after swap", len(decisions) - switch],
            ["slot swap count", kernel.functions.slot("policy").swap_count],
            ["fallback starts immediately", decisions[switch] == "safe"],
        ],
        title="A2 REPLACE: fall back to the known-safe policy"))
    assert "learned" in decisions and "safe" in decisions
    assert all(d == "safe" for d in decisions[switch:])


def test_a3_retrain_with_rate_limit(benchmark, report_sink):
    def scenario():
        kernel = Kernel(seed=43, retrain_min_interval=1 * SECOND)
        kernel.store.save("metric", 9)  # violating from the start
        trained = []
        kernel.retrain_queue.register_trainer(
            "model", lambda request: trained.append(request))
        monitor = kernel.guardrails.load(_spec("RETRAIN(model, LOAD(metric))"))
        kernel.run(until=3 * SECOND)
        completed = kernel.retrain_queue.drain()
        return kernel, monitor, trained, completed

    kernel, monitor, trained, completed = benchmark.pedantic(
        scenario, rounds=1, iterations=1)
    queue = kernel.retrain_queue
    report_sink("fig1_a3_retrain", format_table(
        ["aspect", "value"],
        [
            ["violations (10 Hz checks)", monitor.violation_count],
            ["retrains accepted", queue.accepted_count],
            ["retrains rate-limited", queue.rejected_count],
            ["trainer invocations after drain", len(trained)],
            ["data_ref forwarded", completed[0]["data_ref"]],
        ],
        title="A3 RETRAIN: asynchronous, abuse-protected retraining"))
    # ~30 violations but only ~3 accepted retrains: the rate limit works.
    assert monitor.violation_count >= 25
    assert queue.accepted_count <= 4
    assert queue.rejected_count >= 20
    assert len(trained) == queue.accepted_count


def test_a4_deprioritize(benchmark, report_sink):
    def scenario():
        kernel = Kernel(seed=44)
        sched = kernel.attach("sched", CpuScheduler(kernel))
        sched.spawn("victim", burst_ns=5 * MILLISECOND)
        sched.spawn("bystander", burst_ns=5 * MILLISECOND)
        sched.spawn("expendable", burst_ns=5 * MILLISECOND)
        kernel.store.save("metric", 9)
        monitor = kernel.guardrails.load(
            _spec("DEPRIORITIZE({victim, expendable}, {19, 0})"),
            cooldown=10 * SECOND)
        kernel.run(until=2 * SECOND)
        return kernel, sched, monitor

    kernel, sched, monitor = benchmark.pedantic(scenario, rounds=1,
                                                iterations=1)
    stats = sched.wait_stats()
    report_sink("fig1_a4_deprioritize", format_table(
        ["task", "outcome", "cpu ms"],
        [
            ["victim", "reniced to 19", round(stats["victim"]["executed_ms"])],
            ["expendable", "killed (priority 0)",
             round(stats["expendable"]["executed_ms"])],
            ["bystander", "untouched", round(stats["bystander"]["executed_ms"])],
        ],
        title="A4 DEPRIORITIZE: free resources from the workload side"))
    assert sched.find_task("victim").nice == 19
    assert sched.find_task("expendable").killed
    assert stats["bystander"]["executed_ms"] > stats["victim"]["executed_ms"] * 2

"""Figure 1 (right table) — the A1–A4 action API semantics and cost.

One scenario per action: REPORT records context, REPLACE swaps the policy,
RETRAIN queues (rate-limited) training, DEPRIORITIZE renices/kills tasks.
Each also measures the simulated dispatch cost so the table carries an
overhead column.
"""

from repro.bench.report import format_table
from repro.bench.results import scenario
from repro.kernel import Kernel
from repro.kernel.sched import CpuScheduler
from repro.sim.units import MILLISECOND, SECOND


def _spec(action):
    return (
        "guardrail act {{ trigger: {{ TIMER(start_time, 100ms) }}, "
        "rule: {{ LOAD(metric) <= 1 }}, action: {{ {} }} }}".format(action)
    )


@scenario(cost=0.2, seed=41)
def run_a1_report(report=None):
    kernel = Kernel(seed=41)
    kernel.store.save("metric", 99)
    kernel.store.save("context_value", 7)
    monitor = kernel.guardrails.load(
        _spec("REPORT(LOAD(metric), LOAD(context_value))"))
    kernel.run(until=1 * SECOND)

    reports = kernel.reporter.reports
    metrics = {
        "violations": monitor.violation_count,
        "reports_recorded": len(reports),
        "extra_metric": reports[0]["extras"]["LOAD(metric)"],
        "store_snapshot_keys": len(reports[0]["store"]),
        "simulated_cost_ns": monitor.overhead.simulated_ns,
    }
    if report is not None:
        report("fig1_a1_report", format_table(
            ["aspect", "value"],
            [
                ["violations", metrics["violations"]],
                ["reports recorded", metrics["reports_recorded"]],
                ["extras captured", str(reports[0]["extras"])],
                ["store snapshot keys", metrics["store_snapshot_keys"]],
                ["simulated cost (ns total)", metrics["simulated_cost_ns"]],
            ],
            title="A1 REPORT: violation context for offline analysis"))
    return metrics


@scenario(cost=0.2, seed=42)
def run_a2_replace(report=None):
    kernel = Kernel(seed=42)
    decisions = []
    kernel.functions.register("policy", lambda: decisions.append("learned"))
    kernel.functions.register_implementation(
        "fallback", lambda: decisions.append("safe"))
    kernel.store.save("metric", 0)
    kernel.guardrails.load(_spec("REPLACE(policy, fallback)"))

    def call_policy(step=0):
        kernel.functions.slot("policy")()
        if step < 19:
            kernel.engine.schedule(50 * MILLISECOND, call_policy, step + 1)

    call_policy()
    kernel.engine.schedule(500 * MILLISECOND, kernel.store.save, "metric", 9)
    kernel.run(until=1 * SECOND)

    switch = decisions.index("safe")
    metrics = {
        "decisions_before_swap": switch,
        "decisions_after_swap": len(decisions) - switch,
        "swap_count": kernel.functions.slot("policy").swap_count,
        "all_safe_after_swap": all(d == "safe" for d in decisions[switch:]),
        "saw_learned": "learned" in decisions,
    }
    if report is not None:
        report("fig1_a2_replace", format_table(
            ["aspect", "value"],
            [
                ["decisions before swap", metrics["decisions_before_swap"]],
                ["decisions after swap", metrics["decisions_after_swap"]],
                ["slot swap count", metrics["swap_count"]],
                ["fallback starts immediately",
                 decisions[switch] == "safe"],
            ],
            title="A2 REPLACE: fall back to the known-safe policy"))
    return metrics


@scenario(cost=0.2, seed=43)
def run_a3_retrain(report=None):
    kernel = Kernel(seed=43, retrain_min_interval=1 * SECOND)
    kernel.store.save("metric", 9)  # violating from the start
    trained = []
    kernel.retrain_queue.register_trainer(
        "model", lambda request: trained.append(request))
    monitor = kernel.guardrails.load(_spec("RETRAIN(model, LOAD(metric))"))
    kernel.run(until=3 * SECOND)
    completed = kernel.retrain_queue.drain()

    queue = kernel.retrain_queue
    metrics = {
        "violations": monitor.violation_count,
        "retrains_accepted": queue.accepted_count,
        "retrains_rate_limited": queue.rejected_count,
        "trainer_invocations": len(trained),
        "data_ref": completed[0]["data_ref"],
    }
    if report is not None:
        report("fig1_a3_retrain", format_table(
            ["aspect", "value"],
            [
                ["violations (10 Hz checks)", metrics["violations"]],
                ["retrains accepted", metrics["retrains_accepted"]],
                ["retrains rate-limited", metrics["retrains_rate_limited"]],
                ["trainer invocations after drain",
                 metrics["trainer_invocations"]],
                ["data_ref forwarded", metrics["data_ref"]],
            ],
            title="A3 RETRAIN: asynchronous, abuse-protected retraining"))
    return metrics


@scenario(cost=0.2, seed=44)
def run_a4_deprioritize(report=None):
    kernel = Kernel(seed=44)
    sched = kernel.attach("sched", CpuScheduler(kernel))
    sched.spawn("victim", burst_ns=5 * MILLISECOND)
    sched.spawn("bystander", burst_ns=5 * MILLISECOND)
    sched.spawn("expendable", burst_ns=5 * MILLISECOND)
    kernel.store.save("metric", 9)
    kernel.guardrails.load(
        _spec("DEPRIORITIZE({victim, expendable}, {19, 0})"),
        cooldown=10 * SECOND)
    kernel.run(until=2 * SECOND)

    stats = sched.wait_stats()
    metrics = {
        "victim_nice": sched.find_task("victim").nice,
        "expendable_killed": sched.find_task("expendable").killed,
        "victim_cpu_ms": round(stats["victim"]["executed_ms"], 3),
        "expendable_cpu_ms": round(stats["expendable"]["executed_ms"], 3),
        "bystander_cpu_ms": round(stats["bystander"]["executed_ms"], 3),
    }
    if report is not None:
        report("fig1_a4_deprioritize", format_table(
            ["task", "outcome", "cpu ms"],
            [
                ["victim", "reniced to 19",
                 round(stats["victim"]["executed_ms"])],
                ["expendable", "killed (priority 0)",
                 round(stats["expendable"]["executed_ms"])],
                ["bystander", "untouched",
                 round(stats["bystander"]["executed_ms"])],
            ],
            title="A4 DEPRIORITIZE: free resources from the workload side"))
    return metrics


def scenarios():
    return [
        ("fig1_a1_report", run_a1_report),
        ("fig1_a2_replace", run_a2_replace),
        ("fig1_a3_retrain", run_a3_retrain),
        ("fig1_a4_deprioritize", run_a4_deprioritize),
    ]


def test_a1_report(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_a1_report, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert (metrics["reports_recorded"] == metrics["violations"]
            and metrics["violations"] >= 5)
    assert metrics["extra_metric"] == 99


def test_a2_replace(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_a2_replace, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert metrics["saw_learned"] and metrics["decisions_after_swap"] > 0
    assert metrics["all_safe_after_swap"]


def test_a3_retrain_with_rate_limit(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_a3_retrain, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    # ~30 violations but only ~3 accepted retrains: the rate limit works.
    assert metrics["violations"] >= 25
    assert metrics["retrains_accepted"] <= 4
    assert metrics["retrains_rate_limited"] >= 20
    assert metrics["trainer_invocations"] == metrics["retrains_accepted"]


def test_a4_deprioritize(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_a4_deprioritize, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert metrics["victim_nice"] == 19
    assert metrics["expendable_killed"]
    assert metrics["bystander_cpu_ms"] > metrics["victim_cpu_ms"] * 2

"""Service loop + results store — streaming ingest, regen, retention.

Two claims under the regression gate: (1) a rollout served through
``repro.service`` ingests every round and regenerates a report
byte-identical to the live ``fleet --json`` run — exactness of the store
round-trip is a *metric*, so any drift in sketch serialization or merge
order shows up as a baseline diff; (2) a retention-bounded soak folds
expired raw rounds into buckets without changing fleet totals, and the
raw tail stays capped at the horizon.
"""

import json
import os
import tempfile
import time

from repro.bench.report import format_table
from repro.bench.results import INFO_KEY, scenario
from repro.fleet.scenario import run_fleet_rollout
from repro.service.loop import serve_rollout, serve_soak
from repro.service.query import latency_trend, merged_digest, regenerate_report
from repro.service.store import ResultsStore, RetentionPolicy

HOSTS = 4
SEED = 42
SOAK_ROUNDS = 16
SOAK_RATE = 120


@scenario(cost=1.5, seed=SEED)
def run_service(report=None):
    workdir = tempfile.mkdtemp(prefix="bench_service_")

    started = time.perf_counter()
    live = run_fleet_rollout(hosts=HOSTS, seed=SEED, fault_hosts=1,
                             quick=True)
    live_s = time.perf_counter() - started

    store_path = os.path.join(workdir, "fleet.sqlite")
    started = time.perf_counter()
    with ResultsStore(store_path) as store:
        summary = serve_rollout(store, hosts=HOSTS, seed=SEED, fault_hosts=1,
                                quick=True)
        regen = regenerate_report(store)
    serve_s = time.perf_counter() - started
    live_text = json.dumps(live, indent=2, sort_keys=True)
    regen_text = json.dumps(regen, indent=2, sort_keys=True)

    soak_path = os.path.join(workdir, "soak.sqlite")
    policy = RetentionPolicy(raw_rounds=4, bucket_rounds=4)
    started = time.perf_counter()
    with ResultsStore(soak_path, retention=policy) as store:
        soak = serve_soak(store, hosts=HOSTS, seed=SEED, rate_ios=SOAK_RATE,
                          rounds=SOAK_ROUNDS)
        run_id = soak["run"]
        raw_rounds = store.raw_round_indexes(run_id)
        bucket_rows = store.bucket_rows(run_id)
        folded, meta = merged_digest(store, run_id, 0, SOAK_ROUNDS)
        trend = latency_trend(store, run_id)
    soak_s = time.perf_counter() - started

    metrics = {
        "regen_byte_identical": regen_text == live_text,
        "serve_status": summary["status"],
        "rounds_committed": summary["rounds_committed_now"],
        "digests_ingested": summary["digests_ingested_now"],
        "soak_rows_deleted": soak["raw_rows_deleted_now"],
        "soak_raw_tail_rounds": len(raw_rounds),
        "soak_bucket_rows": len(bucket_rows),
        "soak_total_ios": soak["totals"]["completed_ios"],
        "folded_host_rounds": folded.host_rounds,
        "folded_ios": folded.completed_ios,
        "folded_exact": not meta["approximate"],
        "trend_points": len(trend["points"]),
        INFO_KEY: {
            "live_wall_s": live_s,
            "serve_wall_s": serve_s,
            "soak_wall_s": soak_s,
            "store_bytes": os.path.getsize(store_path),
            "soak_store_bytes": os.path.getsize(soak_path),
        },
    }

    if report is not None:
        rows = [[p["rounds"][0], p["rounds"][1] - 1,
                 "bucket" if p["downsampled"] else "raw",
                 "{:.3f}".format(p["violation_rate"]),
                 "{:.0f}".format(p["p95_us"])
                 if p["p95_us"] is not None else "n/a",
                 p["completed_ios"]]
                for p in trend["points"]]
        lines = ["regenerated report identical to live: {}".format(
            metrics["regen_byte_identical"])]
        lines.append(format_table(
            ["from", "to", "grain", "viol/host-s", "p95us", "IOs"], rows,
            title="soak trend across the raw/bucket seam "
                  "({} hosts, {} rounds, horizon 4)".format(
                      HOSTS, SOAK_ROUNDS)))
        report("service_store", "\n".join(lines))
    return metrics


def scenarios():
    return [("service_store", run_service)]


def test_service_store(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_service, kwargs={"report": report_sink}, rounds=1, iterations=1)

    # The acceptance contract: store round-trip changes nothing.
    assert metrics["regen_byte_identical"] is True
    assert metrics["serve_status"] == "rolled_back"
    assert metrics["digests_ingested"] == HOSTS * metrics["rounds_committed"]
    # Retention bounds the raw tail at the horizon and loses no data.
    assert metrics["soak_raw_tail_rounds"] == 4
    assert metrics["soak_rows_deleted"] == HOSTS * (SOAK_ROUNDS - 4)
    assert metrics["folded_host_rounds"] == HOSTS * SOAK_ROUNDS
    assert metrics["folded_exact"] is True

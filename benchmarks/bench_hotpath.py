"""Hot-path microbenchmarks: the save→trigger→check→dispatch pipeline.

The paper's FUNCTION triggers (§4.1) only make sense if a guardrail check
is near-free, and the ROADMAP's north star is "fast as the hardware
allows".  This module pins wall-clock microbenchmarks on each lane of the
check pipeline so `docs/performance.md` and the perf-smoke CI job can
watch them:

- ``hotpath_store``       — feature-store SAVE/LOAD, raw and derived keys;
- ``hotpath_timer``       — TIMER-triggered checks driven through the
  engine's event heap (timer rescheduling + monitor check);
- ``hotpath_function``    — FUNCTION-triggered checks driven through a
  hook point (per-call interposition, the paper's most demanding mode);
- ``hotpath_eval``        — compiled-rule evaluation alone, for the
  dominant rule shapes (``LOAD(k) < c``, rate comparison, a costly
  multi-load rule);
- ``hotpath_vm_eval``     — the same rule shapes through the bytecode VM
  backend, head to head against the closure backend (semantics pinned
  equal, wall time reported per lane);
- ``hotpath_batch_check`` — one compiled rule evaluated across thousands
  of hosts: per-host scalar loop vs one columnar ``eval_columns`` pass;
- ``hotpath_batch_ssd``   — the SSD completion ingest pipeline (store
  saves + metric records per I/O): scalar per-event path vs the batched
  columnar ingest lane, bit-identical end state.

Wall-clock timings are environment-noisy, so they ride under ``_info``;
the runner-gated metrics are the deterministic counters (checks fired,
loads served, ops charged), which double as a regression net for the
fast-lane rewrites: any semantic drift in the pipeline shows up as a
count mismatch at ``--gate 0.0``.
"""

import gc
import time

from repro.bench.report import format_table
from repro.bench.results import scenario
from repro.core.compiler import GuardrailCompiler
from repro.core.expr import EvalContext
from repro.core.featurestore import FeatureStore
from repro.core.host import MonitorHost
from repro.sim.units import MILLISECOND, SECOND

STORE_ITERS = 20_000
FUNCTION_FIRES = 20_000
EVAL_ITERS = 50_000
CHECK_ITERS = 50_000
TIMER_SECONDS = 20
TIMER_INTERVAL_MS = 1
REPEATS = 5


def _best(fn, repeats=REPEATS):
    """Best-of-N wall time for ``fn()`` (seconds) plus its last result.

    One untimed warm-up run fills allocator/code caches, and the collector
    is paused around the timed runs — both shrink run-to-run jitter, which
    otherwise swamps sub-microsecond lanes.
    """
    result = fn()
    best = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, result


def _spec(name, rule, trigger):
    return (
        "guardrail {} {{ trigger: {{ {} }}, "
        "rule: {{ {} }}, action: {{ REPORT() }} }}".format(name, trigger, rule)
    )


@scenario(cost=0.5, seed=60)
def run_store_save_load(report=None):
    """Raw and derived SAVE/LOAD — the per-event feature-store tax."""

    def raw_loop():
        store = FeatureStore()
        save, load = store.save, store.load
        value = 0.0
        for i in range(STORE_ITERS):
            save("io_latency_us", i & 7)
            value = load("io_latency_us")
        return store, value

    def derived_loop():
        # The clock advances 1 ms per save, so the 1 s rate window holds a
        # steady ~1000 samples — realistic per-event cadence, bounded state.
        clock = [0]
        store = FeatureStore(clock=lambda: clock[0])
        store.derive_rate("event", window=1 * SECOND, name="event.rate")
        save, load = store.save, store.load
        value = 0.0
        for i in range(STORE_ITERS):
            clock[0] = i * MILLISECOND
            save("event", i & 1)
            value = load("event.rate")
        return store, value

    raw_s, (raw_store, raw_last) = _best(raw_loop)
    derived_s, (derived_store, derived_rate) = _best(derived_loop)

    metrics = {
        "iterations": STORE_ITERS,
        "raw_save_count": raw_store.save_count,
        "raw_load_count": raw_store.load_count,
        "raw_last_value": raw_last,
        "derived_save_count": derived_store.save_count,
        "derived_final_rate": round(derived_rate, 6),
        "_info": {
            "raw_ns_per_save_load": round(raw_s / STORE_ITERS * 1e9, 1),
            "derived_ns_per_save_load": round(
                derived_s / STORE_ITERS * 1e9, 1),
            "raw_ops_per_s": round(STORE_ITERS / raw_s),
        },
    }
    if report is not None:
        report("hotpath_store", format_table(
            ["lane", "ns / save+load"],
            [["raw key", metrics["_info"]["raw_ns_per_save_load"]],
             ["derived rate key",
              metrics["_info"]["derived_ns_per_save_load"]]],
            title="Feature-store hot path ({} save+load pairs)".format(
                STORE_ITERS)))
    return metrics


@scenario(cost=0.8, seed=61)
def run_timer_trigger_check(report=None):
    """TIMER-triggered checks end to end through the event heap."""

    def timer_run():
        host = MonitorHost()
        host.store.save("m0", 0)
        compiled = GuardrailCompiler().compile(_spec(
            "timer_hot", "LOAD(m0) <= 1",
            "TIMER(start_time, {}ms)".format(TIMER_INTERVAL_MS)))
        monitor = compiled.instantiate(host)
        monitor.arm()
        host.engine.run(until=TIMER_SECONDS * SECOND)
        return host, monitor

    elapsed, (host, monitor) = _best(timer_run)
    expected_checks = TIMER_SECONDS * SECOND // (TIMER_INTERVAL_MS * MILLISECOND)

    metrics = {
        "checks": monitor.check_count,
        "expected_checks": expected_checks,
        "violations": monitor.violation_count,
        "pending_after": host.engine.pending_events(),
        "overhead_ns": monitor.overhead.simulated_ns,
        "_info": {
            "ns_per_check": round(elapsed / monitor.check_count * 1e9, 1),
            "checks_per_s": round(monitor.check_count / elapsed),
        },
    }
    if report is not None:
        report("hotpath_timer", format_table(
            ["aspect", "value"],
            [["virtual checks", metrics["checks"]],
             ["wall ns / check", metrics["_info"]["ns_per_check"]],
             ["checks / s", metrics["_info"]["checks_per_s"]]],
            title="TIMER-trigger check lane ({} ms period, {} s virtual)"
            .format(TIMER_INTERVAL_MS, TIMER_SECONDS)))
    return metrics


@scenario(cost=0.8, seed=62)
def run_function_trigger_check(report=None):
    """FUNCTION-triggered checks — per-call interposition, the §4.1 case."""

    def function_run():
        host = MonitorHost()
        point = host.hooks.declare("bench.hot_call")
        host.store.save("m0", 0)
        compiled = GuardrailCompiler().compile(_spec(
            "function_hot", "LOAD(m0) <= 1", "FUNCTION(bench.hot_call)"))
        monitor = compiled.instantiate(host)
        monitor.arm()
        fire = point.fire
        for i in range(FUNCTION_FIRES):
            fire(arg=i)
        return monitor

    elapsed, monitor = _best(function_run)

    metrics = {
        "fires": FUNCTION_FIRES,
        "checks": monitor.check_count,
        "violations": monitor.violation_count,
        "inconclusive": monitor.inconclusive_count,
        "overhead_ns": monitor.overhead.simulated_ns,
        "_info": {
            "ns_per_fire": round(elapsed / FUNCTION_FIRES * 1e9, 1),
            "fires_per_s": round(FUNCTION_FIRES / elapsed),
        },
    }
    if report is not None:
        report("hotpath_function", format_table(
            ["aspect", "value"],
            [["hook fires", metrics["fires"]],
             ["checks", metrics["checks"]],
             ["wall ns / fire", metrics["_info"]["ns_per_fire"]]],
            title="FUNCTION-trigger check lane ({} fires)".format(
                FUNCTION_FIRES)))
    return metrics


@scenario(cost=0.6, seed=64)
def run_monitor_check(report=None):
    """``GuardrailMonitor.check`` alone — the core every trigger funnels into.

    Measured by direct call so the number isolates the monitor dispatch +
    rule evaluation cost from the engine heap (timer lane) and the hook
    fan-out (function lane).
    """

    def build(rule):
        host = MonitorHost()
        host.store.save("io_latency_us", 120)
        host.store.derive_rate("false_submit", window=1 * SECOND,
                               name="false_submit.rate")
        host.store.save("false_submit", 1)
        for i in range(5):
            host.store.save("m{}".format(i), i)
        compiled = GuardrailCompiler().compile(_spec(
            "check_hot", rule, "TIMER(start_time, 1ms)"))
        return compiled.instantiate(host)

    def single_rule_loop():
        monitor = build("LOAD(io_latency_us) < 500")
        check = monitor.check
        for _ in range(CHECK_ITERS):
            check({})
        return monitor

    def three_rule_loop():
        monitor = build(
            "LOAD(io_latency_us) < 500, LOAD(false_submit.rate) > 0.05, "
            "LOAD(m0) + LOAD(m1) + LOAD(m2) <= max(LOAD(m3), LOAD(m4)) * 2")
        check = monitor.check
        for _ in range(CHECK_ITERS):
            check({})
        return monitor

    single_s, single = _best(single_rule_loop)
    three_s, three = _best(three_rule_loop)

    metrics = {
        "iterations": CHECK_ITERS,
        "single_checks": single.check_count,
        "single_violations": single.violation_count,
        "single_overhead_ns": single.overhead.simulated_ns,
        "three_checks": three.check_count,
        "three_violations": three.violation_count,
        "three_overhead_ns": three.overhead.simulated_ns,
        "_info": {
            "single_rule_ns_per_check": round(
                single_s / CHECK_ITERS * 1e9, 1),
            "three_rule_ns_per_check": round(three_s / CHECK_ITERS * 1e9, 1),
        },
    }
    if report is not None:
        report("hotpath_check", format_table(
            ["monitor", "ns / check"],
            [["1 threshold rule",
              metrics["_info"]["single_rule_ns_per_check"]],
             ["3 mixed rules",
              metrics["_info"]["three_rule_ns_per_check"]]],
            title="Monitor-check lane ({} direct checks)".format(
                CHECK_ITERS)))
    return metrics


RULE_SHAPES = [
    ("threshold", "LOAD(io_latency_us) < 500"),
    ("rate_cmp", "LOAD(false_submit.rate) > 0.05"),
    ("costly",
     "LOAD(m0) + LOAD(m1) + LOAD(m2) <= max(LOAD(m3), LOAD(m4)) * 2"),
]


@scenario(cost=0.5, seed=63)
def run_compiled_rule_eval(report=None):
    """Compiled-rule evaluation alone, per dominant rule shape."""
    from repro.core.spec import parse_guardrail

    store = FeatureStore()
    store.save("io_latency_us", 120)
    store.derive_rate("false_submit", window=1 * SECOND,
                      name="false_submit.rate")
    store.save("false_submit", 1)
    for i in range(5):
        store.save("m{}".format(i), i)

    rows = []
    metrics = {"iterations": EVAL_ITERS}
    info = {}
    for label, rule in RULE_SHAPES:
        spec = parse_guardrail(_spec(
            "eval_" + label, rule, "TIMER(start_time, 1ms)"))
        compiled = GuardrailCompiler().compile(spec)
        _, program, _ = compiled.rules[0]

        def eval_loop(_program=program):
            ctx = EvalContext(store, now=0)
            result = None
            for _ in range(EVAL_ITERS):
                ctx.ops = 0
                result = _program(ctx)
            return result, ctx.ops

        elapsed, (result, ops) = _best(eval_loop)
        metrics["{}_result".format(label)] = result
        metrics["{}_ops".format(label)] = ops
        info["{}_ns_per_eval".format(label)] = round(
            elapsed / EVAL_ITERS * 1e9, 1)
        rows.append([label, rule, info["{}_ns_per_eval".format(label)]])

    metrics["_info"] = info
    if report is not None:
        report("hotpath_eval", format_table(
            ["shape", "rule", "ns / eval"], rows,
            title="Compiled-rule eval lane ({} evals per shape)".format(
                EVAL_ITERS)))
    return metrics


@scenario(cost=0.5, seed=65)
def run_vm_rule_eval(report=None):
    """The bytecode VM against the closure backend, per rule shape.

    Deterministic gate metrics pin result and charged-ops parity between
    the lanes; the wall-clock ratio rides under ``_info``.
    """
    from repro.core.expr import compile_to_vm
    from repro.core.spec import parse_guardrail

    store = FeatureStore()
    store.save("io_latency_us", 120)
    store.derive_rate("false_submit", window=1 * SECOND,
                      name="false_submit.rate")
    store.save("false_submit", 1)
    for i in range(5):
        store.save("m{}".format(i), i)

    rows = []
    metrics = {"iterations": EVAL_ITERS, "parity": True}
    info = {}
    for label, rule in RULE_SHAPES:
        spec = parse_guardrail(_spec(
            "vm_" + label, rule, "TIMER(start_time, 1ms)"))
        compiled = GuardrailCompiler().compile(spec)
        closure = compiled.closure_programs[0]
        vm_program = compiled.vm_programs[0]

        def eval_loop(_program):
            def loop():
                ctx = EvalContext(store, now=0)
                result = None
                for _ in range(EVAL_ITERS):
                    ctx.ops = 0
                    result = _program(ctx)
                return result, ctx.ops
            return loop

        closure_s, (closure_result, closure_ops) = _best(eval_loop(closure))
        vm_s, (vm_result, vm_ops) = _best(eval_loop(vm_program))
        if closure_result != vm_result or closure_ops != vm_ops:
            metrics["parity"] = False
        metrics["{}_result".format(label)] = vm_result
        metrics["{}_ops".format(label)] = vm_ops
        info["{}_closure_ns".format(label)] = round(
            closure_s / EVAL_ITERS * 1e9, 1)
        info["{}_vm_ns".format(label)] = round(vm_s / EVAL_ITERS * 1e9, 1)
        rows.append([label, info["{}_closure_ns".format(label)],
                     info["{}_vm_ns".format(label)]])

    metrics["_info"] = info
    if report is not None:
        report("hotpath_vm_eval", format_table(
            ["shape", "closure ns / eval", "vm ns / eval"], rows,
            title="Scalar rule eval: closure vs bytecode VM ({} evals)"
            .format(EVAL_ITERS)))
    return metrics


BATCH_ROWS = 4096
BATCH_RULE = ("LOAD(false_submit_rate) <= 0.05 "
              "&& LOAD(io_latency_us) < 100000")


class _RowStore:
    """Minimal per-host store view for the scalar comparison lane."""

    __slots__ = ("values",)

    def __init__(self, values):
        self.values = values

    def load(self, key, default=None):
        return self.values.get(key, default)


@scenario(cost=0.6, seed=66)
def run_batch_check(report=None):
    """One compiled rule across ``BATCH_ROWS`` hosts: scalar vs columnar."""
    import random

    import numpy as np

    from repro.core.expr import compile_to_vm, eval_columns
    from repro.core.spec import parse_guardrail

    rng = random.Random(66)
    rows = []
    for _ in range(BATCH_ROWS):
        values = {}
        if rng.random() >= 0.05:  # 5% of hosts are missing the rate signal
            values["false_submit_rate"] = round(rng.random() * 0.1, 6)
        values["io_latency_us"] = round(rng.random() * 200000, 3)
        rows.append(values)

    spec = parse_guardrail(_spec(
        "batch_check", BATCH_RULE, "TIMER(start_time, 1s)"))
    compiled = GuardrailCompiler().compile(spec)
    closure = compiled.closure_programs[0]
    vm_program = compiled.vm_programs[0]

    # Both lanes evaluate from pre-staged inputs: the scalar loop gets its
    # per-host store views up front, the columnar pass its gathered
    # columns.  The measured quantity is check *evaluation*, either way.
    stores = [_RowStore(values) for values in rows]
    loads = {
        key: np.array([row.get(key, float("nan")) for row in rows],
                      dtype=np.float64)
        for key in vm_program.load_keys
    }

    def scalar_sweep():
        verdicts = {"ok": 0, "violation": 0, "inconclusive": 0}
        total_ops = 0
        for store in stores:
            ctx = EvalContext(store, now=0)
            result = closure(ctx)
            total_ops += ctx.ops
            if result is None:
                verdicts["inconclusive"] += 1
            elif not result:
                verdicts["violation"] += 1
            else:
                verdicts["ok"] += 1
        return verdicts, total_ops

    def columnar_sweep():
        values, ops = eval_columns(vm_program, BATCH_ROWS, loads=loads)
        nan = np.isnan(values)
        return {
            "ok": int(((values != 0) & ~nan).sum()),
            "violation": int((values == 0).sum()),
            "inconclusive": int(nan.sum()),
        }, int(ops.sum())

    scalar_s, (scalar_verdicts, scalar_ops) = _best(scalar_sweep)
    columnar_s, (columnar_verdicts, columnar_ops) = _best(columnar_sweep)

    metrics = {
        "rows": BATCH_ROWS,
        "ok": scalar_verdicts["ok"],
        "violations": scalar_verdicts["violation"],
        "inconclusive": scalar_verdicts["inconclusive"],
        "total_ops": scalar_ops,
        "parity": scalar_verdicts == columnar_verdicts
        and scalar_ops == columnar_ops,
        "_info": {
            "scalar_ns_per_row": round(scalar_s / BATCH_ROWS * 1e9, 1),
            "columnar_ns_per_row": round(columnar_s / BATCH_ROWS * 1e9, 1),
            "speedup": round(scalar_s / columnar_s, 1),
        },
    }
    if report is not None:
        report("hotpath_batch_check", format_table(
            ["lane", "ns / row", "speedup"],
            [["scalar loop", metrics["_info"]["scalar_ns_per_row"], "1.0"],
             ["columnar eval", metrics["_info"]["columnar_ns_per_row"],
              metrics["_info"]["speedup"]]],
            title="Batched rule check across {} hosts".format(BATCH_ROWS)))
    return metrics


SSD_EVENTS = 50_000
SSD_BATCH = 4096


@scenario(cost=0.8, seed=67)
def run_batch_ssd_ingest(report=None):
    """SSD completion ingest: per-event saves vs the batched columnar lane.

    Both lanes consume identical pre-generated completion events (batching
    starts strictly after any RNG draw) and must leave bit-identical
    store, derived-estimator, and metric state — the deterministic gate.
    """
    import random

    from repro.kernel.storage.batch import BatchedCompletionIngest
    from repro.sim.metrics import MetricRecorder

    rng = random.Random(67)
    events = []  # (time, latency_us, fs_event or None, slow)
    for i in range(SSD_EVENTS):
        now = (i + 1) * 100_000  # one completion per 100us of virtual time
        latency = round(50.0 + rng.random() * 900.0, 3)
        slow = latency > 500.0
        fs_event = (1 if slow else 0) if i % 5 != 4 else None
        events.append((now, latency, fs_event, slow))

    class _Clock:
        now = 0

    def build_sinks():
        clock = _Clock()
        store = FeatureStore(clock=lambda: clock.now)
        store.derive_rate("false_submit", window=1 * SECOND,
                          name="false_submit_rate")
        metrics_rec = MetricRecorder(clock)
        return clock, store, metrics_rec

    def scalar_ingest():
        clock, store, metrics_rec = build_sinks()
        for now, latency, fs_event, slow in events:
            clock.now = now
            store.save("io_latency_us", latency)
            if fs_event is not None:
                store.save("false_submit", fs_event)
            metrics_rec.record("storage.io_latency_us", latency, time=now)
            metrics_rec.increment("storage.completed")
            if slow:
                metrics_rec.increment("storage.slow_ios")
        return store, metrics_rec

    def batched_ingest():
        clock, store, metrics_rec = build_sinks()
        ingest = BatchedCompletionIngest(store, metrics_rec, "storage",
                                         SSD_BATCH)
        add = ingest.add
        for now, latency, fs_event, slow in events:
            clock.now = now
            add(now, latency, fs_event, slow)
        ingest.flush()
        return store, metrics_rec

    def fingerprint(store, metrics_rec):
        series = metrics_rec.series("storage.io_latency_us")
        return {
            "save_count": store.save_count,
            "rate": store.load("false_submit_rate"),
            "latency_version": store.version("io_latency_us"),
            "completed": metrics_rec.counter("storage.completed"),
            "slow_ios": metrics_rec.counter("storage.slow_ios"),
            "p95": series.percentile(95),
            "samples": len(series),
        }

    scalar_s, (scalar_store, scalar_metrics) = _best(scalar_ingest)
    batched_s, (batched_store, batched_metrics) = _best(batched_ingest)
    scalar_state = fingerprint(scalar_store, scalar_metrics)
    batched_state = fingerprint(batched_store, batched_metrics)

    metrics = dict(scalar_state)
    metrics["events"] = SSD_EVENTS
    metrics["parity"] = scalar_state == batched_state
    metrics["p95"] = round(metrics["p95"], 6)
    metrics["rate"] = round(metrics["rate"], 6)
    metrics["_info"] = {
        "scalar_ns_per_event": round(scalar_s / SSD_EVENTS * 1e9, 1),
        "batched_ns_per_event": round(batched_s / SSD_EVENTS * 1e9, 1),
        "speedup": round(scalar_s / batched_s, 1),
    }
    if report is not None:
        report("hotpath_batch_ssd", format_table(
            ["lane", "ns / event", "speedup"],
            [["scalar save/record",
              metrics["_info"]["scalar_ns_per_event"], "1.0"],
             ["batched ingest",
              metrics["_info"]["batched_ns_per_event"],
              metrics["_info"]["speedup"]]],
            title="SSD completion ingest ({} events, batch={})".format(
                SSD_EVENTS, SSD_BATCH)))
    return metrics


def scenarios():
    return [
        ("hotpath_store", run_store_save_load),
        ("hotpath_timer", run_timer_trigger_check),
        ("hotpath_function", run_function_trigger_check),
        ("hotpath_check", run_monitor_check),
        ("hotpath_eval", run_compiled_rule_eval),
        ("hotpath_vm_eval", run_vm_rule_eval),
        ("hotpath_batch_check", run_batch_check),
        ("hotpath_batch_ssd", run_batch_ssd_ingest),
    ]


def test_hotpath_store(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_store_save_load, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert metrics["raw_save_count"] == STORE_ITERS
    assert metrics["raw_load_count"] == STORE_ITERS
    assert 0.0 <= metrics["derived_final_rate"] <= 1.0


def test_hotpath_timer(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_timer_trigger_check, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert metrics["checks"] == metrics["expected_checks"]
    assert metrics["violations"] == 0


def test_hotpath_function(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_function_trigger_check, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert metrics["checks"] == metrics["fires"]
    assert metrics["violations"] == 0


def test_hotpath_check(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_monitor_check, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert metrics["single_checks"] == CHECK_ITERS
    assert metrics["single_violations"] == 0
    assert metrics["three_violations"] == 0
    # ns_per_check=50 + 4 charged ops * ns_per_op=5 per check, exactly.
    assert metrics["single_overhead_ns"] == CHECK_ITERS * 70


def test_hotpath_eval(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_compiled_rule_eval, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert metrics["threshold_result"] is True
    assert metrics["rate_cmp_result"] is True
    assert metrics["costly_result"] is not None
    # static_cost is an upper bound: runtime ops never exceed it.
    assert metrics["threshold_ops"] == 4


def test_hotpath_vm_eval(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_vm_rule_eval, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert metrics["parity"] is True
    assert metrics["threshold_result"] is True
    assert metrics["threshold_ops"] == 4


def test_hotpath_batch_check(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_batch_check, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert metrics["parity"] is True
    assert metrics["ok"] + metrics["violations"] + metrics["inconclusive"] \
        == BATCH_ROWS
    assert metrics["inconclusive"] > 0  # the missing-signal hosts


def test_hotpath_batch_ssd(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_batch_ssd_ingest, kwargs={"report": report_sink},
        rounds=1, iterations=1)
    assert metrics["parity"] is True
    assert metrics["completed"] == SSD_EVENTS
    assert metrics["samples"] == SSD_EVENTS

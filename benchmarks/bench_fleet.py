"""Fleet-scale Listing 2 — staged rollout with health gates, clean vs faulted.

The fleet counterpart of the chaos demo: the same canonical rollout (v1
report-only guardrail -> v2 enforcing, canary -> 25% -> 100%) runs twice
over a small quick-tier fleet.  The clean run must walk every stage and
land v2 on the whole fleet; the run with a corrupt-telemetry canary must
trip the inconclusive-rate gate at the first stage and roll the cohort
back through ``GuardrailManager.update()``.  Both reports are fully
deterministic — the regression gate keys on the gate measurements
themselves, so a drift in fleet health math shows up as a baseline diff.
"""

import time

from repro.bench.report import format_table
from repro.bench.results import INFO_KEY, scenario
from repro.fleet.scenario import run_fleet_rollout

HOSTS = 4
SEED = 42


def _stage_rows(report):
    rows = []
    for entry in report["stages"]:
        gate = entry["gate"]
        digest = entry["digest"]
        rows.append([
            entry["stage"]["label"],
            entry["stage"]["target_hosts"],
            "PASS" if gate["passed"] else "TRIP",
            "{:.3f}".format(gate["measurements"]["violation_rate"]),
            "{:.3f}".format(gate["measurements"]["inconclusive_rate"]),
            digest["completed_ios"],
        ])
    return rows


@scenario(cost=1.5, seed=SEED)
def run_fleet(report=None):
    started = time.perf_counter()
    clean = run_fleet_rollout(hosts=HOSTS, seed=SEED, quick=True)
    clean_s = time.perf_counter() - started

    started = time.perf_counter()
    faulted = run_fleet_rollout(hosts=HOSTS, seed=SEED, fault_hosts=1,
                                quick=True)
    faulted_s = time.perf_counter() - started

    canary_gate = faulted["stages"][0]["gate"]
    metrics = {
        "clean_status": clean["status"],
        "clean_stages_run": len(clean["stages"]),
        "clean_gates_passed": sum(
            1 for entry in clean["stages"] if entry["gate"]["passed"]),
        "clean_final_cohort": clean["stages"][-1]["stage"]["target_hosts"],
        "clean_completed_ios": sum(
            entry["digest"]["completed_ios"] for entry in clean["stages"]),
        "faulted_status": faulted["status"],
        "faulted_halt_stage": faulted["rolled_back_at_stage"],
        "faulted_stages_run": len(faulted["stages"]),
        "faulted_rollback_hosts": faulted["stages"][-1]["rollback"]["hosts"],
        "canary_inconclusive_delta": round(
            canary_gate["measurements"]["inconclusive_rate_delta"], 6),
        "canary_violation_delta": round(
            canary_gate["measurements"]["violation_rate_delta"], 6),
        "baseline_completed_ios": clean["baseline"]["completed_ios"],
        INFO_KEY: {"clean_wall_s": clean_s, "faulted_wall_s": faulted_s},
    }

    if report is not None:
        lines = [format_table(
            ["stage", "cohort", "gate", "viol/host-s", "inconcl/host-s",
             "IOs"],
            _stage_rows(clean),
            title="clean rollout ({} hosts, seed {})".format(HOSTS, SEED))]
        lines.append(format_table(
            ["stage", "cohort", "gate", "viol/host-s", "inconcl/host-s",
             "IOs"],
            _stage_rows(faulted),
            title="faulted rollout (1 corrupt-telemetry canary)"))
        lines.append("faulted timeline:")
        for event in faulted["timeline"]:
            lines.append("  t={:>5.1f}s  {}".format(
                event["time_s"], event["event"]))
        report("fleet_rollout", "\n".join(lines))
    return metrics


def scenarios():
    return [("fleet_rollout", run_fleet)]


def test_fleet_rollout(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_fleet, kwargs={"report": report_sink}, rounds=1, iterations=1)

    # -- shape assertions --------------------------------------------------
    # The clean fleet takes v2 everywhere; the corrupt canary halts the
    # rollout at the first gate and rolls back exactly the canary cohort.
    assert metrics["clean_status"] == "completed"
    assert metrics["clean_gates_passed"] == metrics["clean_stages_run"]
    assert metrics["clean_final_cohort"] == HOSTS
    assert metrics["faulted_status"] == "rolled_back"
    assert metrics["faulted_halt_stage"] == "canary"
    assert metrics["faulted_stages_run"] == 1
    assert metrics["faulted_rollback_hosts"] == 1
    # The canary goes blind, not loud: NaN telemetry is inconclusive.
    assert metrics["canary_inconclusive_delta"] > 0.5
    assert metrics["canary_violation_delta"] <= 0.5

"""Ablation §4.1 — decoupling rules from triggers.

The same false-submit rule checked at different TIMER intervals and with a
FUNCTION trigger: detection delay falls as checking gets more frequent, but
monitor overhead rises.  The TIMER lets deployments pick their point on
that curve; the verifier's minimum interval bounds the worst case.
"""

from repro.bench.report import format_table
from repro.bench.results import scenario
from repro.kernel import Kernel
from repro.sim.units import MILLISECOND, SECOND

RULE = "LOAD(error_rate) <= 0.1"

INTERVALS_MS = [10, 100, 1000, 5000]


def _spec(trigger):
    return (
        "guardrail g {{ trigger: {{ {} }}, rule: {{ " + RULE +
        " }}, action: {{ SAVE(tripped, true) }} }}"
    ).format(trigger)


def _run(trigger, violation_at=7_300 * MILLISECOND, duration=20 * SECOND):
    kernel = Kernel(seed=51)
    kernel.store.save("error_rate", 0.01)
    hook = kernel.hooks.declare("app.request")

    # Background activity driving the FUNCTION trigger at ~200 Hz.
    def request(step=0):
        hook.fire(step=step)
        if kernel.now < duration:
            kernel.engine.schedule(5 * MILLISECOND, request, step + 1)

    request()
    kernel.engine.schedule_at(violation_at, kernel.store.save,
                              "error_rate", 0.5)
    monitor = kernel.guardrails.load(_spec(trigger))
    kernel.run(until=duration)
    first = monitor.violations[0].time if monitor.violations else None
    delay = None if first is None else (first - violation_at) / MILLISECOND
    return {
        "checks": monitor.check_count,
        "delay_ms": delay,
        "overhead_ns": monitor.overhead.simulated_ns,
    }


@scenario(cost=0.4, seed=51)
def run_trigger_ablation(report=None):
    results = {}
    for interval in INTERVALS_MS:
        results["TIMER {} ms".format(interval)] = _run(
            "TIMER(start_time, {}ms)".format(interval))
    results["FUNCTION (per call)"] = _run("FUNCTION(app.request)")

    metrics = {}
    for interval in INTERVALS_MS:
        r = results["TIMER {} ms".format(interval)]
        for key in ("checks", "delay_ms", "overhead_ns"):
            metrics["timer_{}ms_{}".format(interval, key)] = r[key]
    for key in ("checks", "delay_ms", "overhead_ns"):
        metrics["function_{}".format(key)] = results["FUNCTION (per call)"][key]

    if report is not None:
        rows = [
            [name, r["checks"], r["delay_ms"], r["overhead_ns"]]
            for name, r in results.items()
        ]
        report("ablation_trigger", format_table(
            ["trigger", "checks in 20s", "detection delay ms",
             "monitor overhead ns"],
            rows,
            title="§4.1 ablation: check frequency vs detection delay "
                  "vs overhead"))
    return metrics


def scenarios():
    return [("ablation_trigger", run_trigger_ablation)]


def test_trigger_ablation(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_trigger_ablation, kwargs={"report": report_sink},
        rounds=1, iterations=1)

    delays = [metrics["timer_{}ms_delay_ms".format(i)] for i in INTERVALS_MS]
    overheads = [metrics["timer_{}ms_overhead_ns".format(i)]
                 for i in INTERVALS_MS]
    # Coarser timers: no more delay-optimal than finer ones; strictly less
    # overhead.
    assert all(a <= b for a, b in zip(delays, delays[1:]))
    assert all(a >= b for a, b in zip(overheads, overheads[1:]))
    # The FUNCTION trigger detects fastest but costs the most checks.
    assert metrics["function_delay_ms"] <= delays[0]
    assert metrics["function_checks"] > metrics["timer_10ms_checks"]

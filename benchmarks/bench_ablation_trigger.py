"""Ablation §4.1 — decoupling rules from triggers.

The same false-submit rule checked at different TIMER intervals and with a
FUNCTION trigger: detection delay falls as checking gets more frequent, but
monitor overhead rises.  The TIMER lets deployments pick their point on
that curve; the verifier's minimum interval bounds the worst case.
"""

from repro.bench.report import format_table
from repro.kernel import Kernel
from repro.sim.units import MILLISECOND, SECOND

RULE = "LOAD(error_rate) <= 0.1"

INTERVALS_MS = [10, 100, 1000, 5000]


def _spec(trigger):
    return (
        "guardrail g {{ trigger: {{ {} }}, rule: {{ " + RULE +
        " }}, action: {{ SAVE(tripped, true) }} }}"
    ).format(trigger)


def _run(trigger, violation_at=7_300 * MILLISECOND, duration=20 * SECOND):
    kernel = Kernel(seed=51)
    kernel.store.save("error_rate", 0.01)
    hook = kernel.hooks.declare("app.request")

    # Background activity driving the FUNCTION trigger at ~200 Hz.
    def request(step=0):
        hook.fire(step=step)
        if kernel.now < duration:
            kernel.engine.schedule(5 * MILLISECOND, request, step + 1)

    request()
    kernel.engine.schedule_at(violation_at, kernel.store.save,
                              "error_rate", 0.5)
    monitor = kernel.guardrails.load(_spec(trigger))
    kernel.run(until=duration)
    first = monitor.violations[0].time if monitor.violations else None
    delay = None if first is None else (first - violation_at) / MILLISECOND
    return {
        "checks": monitor.check_count,
        "delay_ms": delay,
        "overhead_ns": monitor.overhead.simulated_ns,
    }


def test_trigger_ablation(benchmark, report_sink):
    def run_all():
        results = {}
        for interval in INTERVALS_MS:
            results["TIMER {} ms".format(interval)] = _run(
                "TIMER(start_time, {}ms)".format(interval))
        results["FUNCTION (per call)"] = _run("FUNCTION(app.request)")
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, r["checks"], r["delay_ms"], r["overhead_ns"]]
        for name, r in results.items()
    ]
    report_sink("ablation_trigger", format_table(
        ["trigger", "checks in 20s", "detection delay ms",
         "monitor overhead ns"],
        rows,
        title="§4.1 ablation: check frequency vs detection delay vs overhead"))

    delays = [results["TIMER {} ms".format(i)]["delay_ms"]
              for i in INTERVALS_MS]
    overheads = [results["TIMER {} ms".format(i)]["overhead_ns"]
                 for i in INTERVALS_MS]
    # Coarser timers: no more delay-optimal than finer ones; strictly less
    # overhead.
    assert all(a <= b for a, b in zip(delays, delays[1:]))
    assert all(a >= b for a, b in zip(overheads, overheads[1:]))
    # The FUNCTION trigger detects fastest but costs the most checks.
    function = results["FUNCTION (per call)"]
    assert function["delay_ms"] <= delays[0]
    assert function["checks"] > results["TIMER 10 ms"]["checks"]

"""§6 discussion — guardrail feedback loops, detected and dampened.

Two coupled guardrails toggle ``ml_enabled`` indefinitely (each fix
violates the other's property).  The FeedbackDetector spots the flapping;
dampening disables the younger guardrail and the system settles.
"""

from repro.bench.report import format_table
from repro.core.feedback import FeedbackDetector
from repro.kernel import Kernel
from repro.sim.units import SECOND

PROTECTOR = """
guardrail latency-protector {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(latency_ms) <= 5 || LOAD(ml_enabled) == false },
  action: { SAVE(ml_enabled, false) }
}
"""

RESTORER = """
guardrail quality-restorer {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(quality) >= 0.8 || LOAD(ml_enabled) == true },
  action: { SAVE(ml_enabled, true) }
}
"""


def _coupled_kernel():
    kernel = Kernel(seed=54)
    store = kernel.store
    store.save("ml_enabled", True)

    def publish(step=0):
        if store.load("ml_enabled"):
            store.save("latency_ms", 8.0)
            store.save("quality", 0.9)
        else:
            store.save("latency_ms", 2.0)
            store.save("quality", 0.6)
        if kernel.now < 40 * SECOND:
            kernel.engine.schedule(SECOND // 2, publish, step + 1)

    publish()
    kernel.guardrails.load(PROTECTOR)
    kernel.guardrails.load(RESTORER)
    return kernel


def _toggle_rate(kernel, start, end):
    saves = [n for n in kernel.reporter.notes_for(kind="SAVE")
             if start <= n["time"] < end]
    return len(saves) / ((end - start) / SECOND)


def test_oscillation_and_dampening(benchmark, report_sink):
    def scenario():
        kernel = _coupled_kernel()
        detector = FeedbackDetector(kernel, window=30 * SECOND)
        kernel.run(until=15 * SECOND)
        before_rate = _toggle_rate(kernel, 0, 15 * SECOND)
        reports = detector.scan()
        flapping = [r for r in reports if r.kind == "key-flapping"]
        victim = detector.dampen(kernel.guardrails, flapping[0])
        kernel.run(until=30 * SECOND)
        after_rate = _toggle_rate(kernel, 15 * SECOND, 30 * SECOND)
        return kernel, reports, victim, before_rate, after_rate

    kernel, reports, victim, before_rate, after_rate = benchmark.pedantic(
        scenario, rounds=1, iterations=1)

    rows = [
        ["guardrail actions/s before dampening", round(before_rate, 2)],
        ["oscillation reports", len(reports)],
        ["report kinds", ", ".join(sorted({r.kind for r in reports}))],
        ["dampened guardrail", victim],
        ["guardrail actions/s after dampening", round(after_rate, 2)],
        ["ml_enabled settled at", kernel.store.load("ml_enabled")],
    ]
    report_sink("oscillation", format_table(
        ["aspect", "value"], rows,
        title="§6: two coupled guardrails oscillate until dampened"))

    assert before_rate >= 0.8                  # ~1 toggle per second
    assert {r.kind for r in reports} == {"key-flapping", "action-ping-pong"}
    assert victim == "quality-restorer"
    assert after_rate <= before_rate / 5

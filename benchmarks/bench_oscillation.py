"""§6 discussion — guardrail feedback loops, detected and dampened.

Two coupled guardrails toggle ``ml_enabled`` indefinitely (each fix
violates the other's property).  The FeedbackDetector spots the flapping;
dampening disables the younger guardrail and the system settles.
"""

from repro.bench.report import format_table
from repro.bench.results import scenario
from repro.core.feedback import FeedbackDetector
from repro.kernel import Kernel
from repro.sim.units import SECOND

PROTECTOR = """
guardrail latency-protector {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(latency_ms) <= 5 || LOAD(ml_enabled) == false },
  action: { SAVE(ml_enabled, false) }
}
"""

RESTORER = """
guardrail quality-restorer {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(quality) >= 0.8 || LOAD(ml_enabled) == true },
  action: { SAVE(ml_enabled, true) }
}
"""


def _coupled_kernel():
    kernel = Kernel(seed=54)
    store = kernel.store
    store.save("ml_enabled", True)

    def publish(step=0):
        if store.load("ml_enabled"):
            store.save("latency_ms", 8.0)
            store.save("quality", 0.9)
        else:
            store.save("latency_ms", 2.0)
            store.save("quality", 0.6)
        if kernel.now < 40 * SECOND:
            kernel.engine.schedule(SECOND // 2, publish, step + 1)

    publish()
    kernel.guardrails.load(PROTECTOR)
    kernel.guardrails.load(RESTORER)
    return kernel


def _toggle_rate(kernel, start, end):
    saves = [n for n in kernel.reporter.notes_for(kind="SAVE")
             if start <= n["time"] < end]
    return len(saves) / ((end - start) / SECOND)


@scenario(cost=0.5, seed=54)
def run_oscillation(report=None):
    kernel = _coupled_kernel()
    detector = FeedbackDetector(kernel, window=30 * SECOND)
    kernel.run(until=15 * SECOND)
    before_rate = _toggle_rate(kernel, 0, 15 * SECOND)
    reports = detector.scan()
    flapping = [r for r in reports if r.kind == "key-flapping"]
    victim = detector.dampen(kernel.guardrails, flapping[0])
    kernel.run(until=30 * SECOND)
    after_rate = _toggle_rate(kernel, 15 * SECOND, 30 * SECOND)

    metrics = {
        "before_rate_per_s": round(before_rate, 4),
        "after_rate_per_s": round(after_rate, 4),
        "oscillation_reports": len(reports),
        "report_kinds": ", ".join(sorted({r.kind for r in reports})),
        "dampened_guardrail": victim,
        "ml_enabled_settled": bool(kernel.store.load("ml_enabled")),
    }

    if report is not None:
        rows = [
            ["guardrail actions/s before dampening", round(before_rate, 2)],
            ["oscillation reports", metrics["oscillation_reports"]],
            ["report kinds", metrics["report_kinds"]],
            ["dampened guardrail", victim],
            ["guardrail actions/s after dampening", round(after_rate, 2)],
            ["ml_enabled settled at", metrics["ml_enabled_settled"]],
        ]
        report("oscillation", format_table(
            ["aspect", "value"], rows,
            title="§6: two coupled guardrails oscillate until dampened"))
    return metrics


def scenarios():
    return [("oscillation", run_oscillation)]


def test_oscillation_and_dampening(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_oscillation, kwargs={"report": report_sink},
        rounds=1, iterations=1)

    assert metrics["before_rate_per_s"] >= 0.8   # ~1 toggle per second
    assert metrics["report_kinds"] == "action-ping-pong, key-flapping"
    assert metrics["dampened_guardrail"] == "quality-restorer"
    assert metrics["after_rate_per_s"] <= metrics["before_rate_per_s"] / 5

"""Listing 1 / Listing 2 — the specification language itself.

Regenerates the interface artifacts: Listing 2 parses verbatim, round-trips
through the printer, compiles under the default verifier budgets, and the
end-to-end DSL pipeline is microbenchmarked (it must be cheap enough for
incremental deployment at runtime, §3.3).
"""

from repro.bench.report import format_table
from repro.bench.results import scenario
from repro.bench.scenarios import LISTING2_SPEC
from repro.core.compiler import GuardrailCompiler
from repro.core.spec import parse_guardrail


def _full_pipeline():
    compiler = GuardrailCompiler()
    spec = parse_guardrail(LISTING2_SPEC)
    reparsed = parse_guardrail(spec.to_source())
    return compiler.compile(reparsed)


@scenario(cost=0.1)
def run_listing2_pipeline(report=None):
    compiled = _full_pipeline()
    spec = compiled.spec
    metrics = {
        "name": spec.name,
        "trigger_kind": compiled.trigger_params[0][0],
        "timer_interval_ns": compiled.trigger_params[0][2],
        "first_action": compiled.actions[0].kind,
        "verified_cost_ops": compiled.verification.total_cost,
        "estimated_ops_per_s": round(
            compiled.verification.estimated_ops_per_second, 1),
    }
    if report is not None:
        report("listing2_pipeline", format_table(
            ["aspect", "value"],
            [
                ["name", spec.name],
                ["triggers", "; ".join(t.to_source() for t in spec.triggers)],
                ["rules", "; ".join(r.to_source() for r in spec.rules)],
                ["actions", "; ".join(a.to_source() for a in spec.actions)],
                ["verified cost (ops/check)", metrics["verified_cost_ops"]],
                ["estimated ops/s", metrics["estimated_ops_per_s"]],
            ],
            title="Listing 2 through the full "
                  "parse/print/compile/verify pipeline"))
    return metrics


def scenarios():
    return [("listing2_pipeline", run_listing2_pipeline)]


def test_listing2_pipeline(benchmark, report_sink):
    compiled = benchmark(_full_pipeline)
    assert compiled.spec.name == "low-false-submit"
    assert compiled.trigger_params[0] == ("timer", None, 10 ** 9, None)
    assert compiled.actions[0].kind == "SAVE"

    metrics = run_listing2_pipeline(report=report_sink)
    assert metrics["name"] == "low-false-submit"
    assert metrics["first_action"] == "SAVE"

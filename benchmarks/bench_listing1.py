"""Listing 1 / Listing 2 — the specification language itself.

Regenerates the interface artifacts: Listing 2 parses verbatim, round-trips
through the printer, compiles under the default verifier budgets, and the
end-to-end DSL pipeline is microbenchmarked (it must be cheap enough for
incremental deployment at runtime, §3.3).
"""

from repro.bench.report import format_table
from repro.bench.scenarios import LISTING2_SPEC
from repro.core.compiler import GuardrailCompiler
from repro.core.spec import parse_guardrail


def test_listing2_pipeline(benchmark, report_sink):
    compiler = GuardrailCompiler()

    def full_pipeline():
        spec = parse_guardrail(LISTING2_SPEC)
        reparsed = parse_guardrail(spec.to_source())
        return compiler.compile(reparsed)

    compiled = benchmark(full_pipeline)
    spec = compiled.spec
    report_sink("listing2_pipeline", format_table(
        ["aspect", "value"],
        [
            ["name", spec.name],
            ["triggers", "; ".join(t.to_source() for t in spec.triggers)],
            ["rules", "; ".join(r.to_source() for r in spec.rules)],
            ["actions", "; ".join(a.to_source() for a in spec.actions)],
            ["verified cost (ops/check)", compiled.verification.total_cost],
            ["estimated ops/s", round(
                compiled.verification.estimated_ops_per_second, 1)],
        ],
        title="Listing 2 through the full parse/print/compile/verify pipeline"))

    assert spec.name == "low-false-submit"
    assert compiled.trigger_params[0] == ("timer", None, 10 ** 9, None)
    assert compiled.actions[0].kind == "SAVE"

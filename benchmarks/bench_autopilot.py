"""§3.3 closed loop — the autopilot tightens through the rollout gates.

Two claims under the regression gate: (1) starting from a deliberately
loose threshold, the autopilot mines fleet digest history, deploys each
tightened guardrail through canary -> 25% -> 100%, and converges on a
tighter envelope with zero rollbacks; (2) when its first deploy bakes a
corrupt-telemetry canary, the inconclusive-rate gate trips at the canary
stage, the cohort rolls back, and the loop backs off (wider margin,
cooldown) instead of re-proposing the rejected spec.  The converged
threshold and the tripped gate's measurement are metrics, so a drift in
mining, envelope math, or gate health shows up as a baseline diff.
"""

import json
import os
import tempfile
import time

from repro.autopilot.loop import run_autopilot
from repro.bench.report import format_table
from repro.bench.results import INFO_KEY, scenario
from repro.service.store import ResultsStore

HOSTS = 8
SEED = 42
ITERATIONS = 4


@scenario(cost=3.0, seed=SEED)
def run_autopilot_loop(report=None):
    workdir = tempfile.mkdtemp(prefix="bench_autopilot_")

    clean_path = os.path.join(workdir, "clean.sqlite")
    started = time.perf_counter()
    with ResultsStore(clean_path) as store:
        clean = run_autopilot(store, hosts=HOSTS, seed=SEED,
                              iterations=ITERATIONS, quick=True)
        clean_rows = store.proposal_rows()
    clean_s = time.perf_counter() - started

    corrupt_path = os.path.join(workdir, "corrupt.sqlite")
    started = time.perf_counter()
    with ResultsStore(corrupt_path) as store:
        corrupt = run_autopilot(store, hosts=HOSTS, seed=SEED,
                                iterations=2, quick=True, corrupt_at=0)
    corrupt_s = time.perf_counter() - started

    tripped = corrupt["iterations"][0]
    metrics = {
        "clean_converged": clean["final"]["converged"],
        "clean_deployed": clean["final"]["deployed"],
        "clean_rolled_back": clean["final"]["rolled_back"],
        "clean_final_threshold": clean["final"]["threshold"],
        "clean_final_version": clean["final"]["version"],
        "clean_proposals_recorded": len(clean_rows),
        "synthesized_properties": len(clean["synthesis"]),
        "corrupt_action": tripped["action"],
        "corrupt_halt_stage": tripped["rolled_back_at_stage"],
        "corrupt_threshold_after": tripped["threshold_after"],
        "corrupt_margin_after": tripped["margin_after"],
        "corrupt_next_action": corrupt["iterations"][1]["action"],
        INFO_KEY: {"clean_wall_s": clean_s, "corrupt_wall_s": corrupt_s},
    }

    if report is not None:
        rows = []
        for entry in clean["iterations"]:
            proposal = entry.get("proposal") or {}
            provenance = proposal.get("provenance") or {}
            rows.append([
                entry["iteration"], entry["action"],
                "v{}".format(proposal["version"]) if proposal else "-",
                ("{:g}".format(provenance["threshold"])
                 if provenance else "-"),
                entry["threshold_after"],
            ])
        lines = [format_table(
            ["iter", "action", "version", "proposed", "deployed threshold"],
            rows,
            title="clean loop ({} hosts, seed {})".format(HOSTS, SEED))]
        lines.append("corrupt canary: {} at {} ({})".format(
            tripped["action"], tripped["rolled_back_at_stage"],
            "; ".join(tripped["gate_reasons"])))
        lines.append("provenance of the last deployed proposal:")
        deployed = [r for r in clean_rows if r["verdict"] == "deployed"]
        lines.append(json.dumps(json.loads(deployed[-1]["provenance"]),
                                indent=2, sort_keys=True))
        report("autopilot_loop", "\n".join(lines))
    return metrics


def scenarios():
    return [("autopilot_loop", run_autopilot_loop)]


def test_autopilot_loop(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_autopilot_loop, kwargs={"report": report_sink}, rounds=1,
        iterations=1)

    # -- shape assertions --------------------------------------------------
    # The clean loop converges below the hand-picked 0.2 without a single
    # rollback; the corrupt canary trips the first gate and backs off.
    assert metrics["clean_converged"]
    assert metrics["clean_rolled_back"] == 0
    assert metrics["clean_deployed"] >= 2
    assert metrics["clean_final_threshold"] < 0.5
    assert metrics["corrupt_action"] == "rolled_back"
    assert metrics["corrupt_halt_stage"] == "canary"
    # Backoff, not retry: the threshold held and the margin widened.
    assert metrics["corrupt_threshold_after"] == 0.5
    assert metrics["corrupt_margin_after"] > 1.5
    assert metrics["corrupt_next_action"] == "cooldown"

"""Scenario zoo + the §6 feedback-loop study, under the regression gate.

Two lanes:

- ``scenario_zoo`` runs every quick-tier registry scenario inline (bench
  workers are pool children, so no nested pool) and gates on the verdict
  census: any drift in a domain rig, a guardrail threshold, or a fault
  plan shows up as a matched-count diff.
- ``feedback_study`` regenerates the §6 artifact at the registry seed:
  timer-driven checking oscillates (alternating trips for the whole run),
  dependency-driven checking damps after one genuine detection, and on a
  quiet host dependency checking eliminates every wasted idle check —
  the gated perf claim.
"""

import time

from repro.bench.report import format_table
from repro.bench.results import INFO_KEY, scenario
from repro.scenarios import run_scenario, select_scenarios
from repro.scenarios.feedback import run_feedback_study, run_idle_check_study

SEED = 17
DURATION_S = 40.0


@scenario(cost=5.0, seed=SEED)
def run_scenario_zoo(report=None):
    started = time.perf_counter()
    results = [run_scenario(spec) for spec in select_scenarios(quick=True)]
    wall_s = time.perf_counter() - started

    census = {"trip": 0, "inconclusive": 0, "allow": 0}
    for result in results:
        census[result["overall"]] += 1
    metrics = {
        "scenarios_total": len(results),
        "scenarios_matched": sum(1 for r in results if r["matched"]),
        "verdict_trip": census["trip"],
        "verdict_inconclusive": census["inconclusive"],
        "verdict_allow": census["allow"],
        INFO_KEY: {"wall_s": wall_s},
    }

    if report is not None:
        rows = [[r["name"], r["overall"],
                 "ok" if r["matched"] else "MISMATCH"] for r in results]
        report("scenario_zoo", format_table(
            ["scenario", "overall", "vs registry"], rows,
            title="quick-tier scenario zoo"))
    return metrics


@scenario(cost=4.0, seed=SEED)
def run_feedback_lane(report=None):
    started = time.perf_counter()
    timer = run_feedback_study("timer", seed=SEED, duration_s=DURATION_S)
    dependency = run_feedback_study("dependency", seed=SEED,
                                    duration_s=DURATION_S)
    idle_timer = run_idle_check_study("timer", seed=SEED,
                                      duration_s=DURATION_S)
    idle_dependency = run_idle_check_study("dependency", seed=SEED,
                                           duration_s=DURATION_S)
    wall_s = time.perf_counter() - started

    metrics = {
        # The oscillation signature (timer) and the damping (dependency).
        "timer_trips": timer["trips"],
        "timer_alternations": timer["alternations"],
        "timer_converged": timer["converged"],
        "dependency_trips": dependency["trips"],
        "dependency_tail_trips": dependency["tail_trips"],
        "dependency_converged": dependency["converged"],
        "dependency_retry_debt_mbit": dependency["retry_debt_filed_mbit"],
        "timer_retry_debt_mbit": timer["retry_debt_filed_mbit"],
        # §6's perf claim: wasted checks on an idle metric.
        "idle_checks_timer": idle_timer["idle_checks"],
        "idle_checks_dependency": idle_dependency["idle_checks"],
        "checks_timer": idle_timer["checks_total"],
        "checks_dependency": idle_dependency["checks_total"],
        "idle_checks_eliminated": (idle_timer["idle_checks"]
                                   - idle_dependency["idle_checks"]),
        INFO_KEY: {"wall_s": wall_s},
    }

    if report is not None:
        rows = [
            ["timer", timer["trips"], timer["alternations"],
             timer["tail_trips"], timer["converged"],
             idle_timer["checks_total"], idle_timer["idle_checks"]],
            ["dependency", dependency["trips"], dependency["alternations"],
             dependency["tail_trips"], dependency["converged"],
             idle_dependency["checks_total"],
             idle_dependency["idle_checks"]],
        ]
        report("feedback_study", format_table(
            ["mode", "trips", "alternations", "tail trips", "converged",
             "quiet-host checks", "quiet-host idle"],
            rows,
            title="§6 feedback study (seed {}, {:g}s)".format(SEED,
                                                              DURATION_S)))
    return metrics


def scenarios():
    return [("scenario_zoo", run_scenario_zoo),
            ("feedback_study", run_feedback_lane)]


def test_scenario_zoo(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_scenario_zoo, kwargs={"report": report_sink}, rounds=1,
        iterations=1)
    assert metrics["scenarios_matched"] == metrics["scenarios_total"] >= 24


def test_feedback_study(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_feedback_lane, kwargs={"report": report_sink}, rounds=1,
        iterations=1)
    # The §6 acceptance shape: timer oscillates, dependency damps, and the
    # dependency mode performs measurably fewer (here: zero) idle checks.
    assert metrics["timer_alternations"] >= 3
    assert not metrics["timer_converged"]
    assert metrics["dependency_converged"]
    assert metrics["dependency_tail_trips"] == 0
    assert metrics["idle_checks_dependency"] == 0
    assert metrics["idle_checks_eliminated"] > 0
    assert metrics["checks_dependency"] < metrics["checks_timer"]

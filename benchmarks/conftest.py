"""Shared benchmark fixtures and the report emitter.

Every benchmark regenerates one paper artifact (a figure, table, or design
claim) and both *prints* the regenerated rows/series (run with ``-s`` to see
them inline) and writes them under ``benchmarks/out/`` so EXPERIMENTS.md can
reference stable files.
"""

import pathlib

import pytest

from repro.bench.scenarios import train_default_linnos_model

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def linnos_model():
    """The trained LinnOS classifier, shared by every storage benchmark."""
    return train_default_linnos_model(seed=1, train_seconds=15)


@pytest.fixture(scope="session")
def report_sink():
    OUT_DIR.mkdir(exist_ok=True)

    def emit(name, text):
        path = OUT_DIR / (name + ".txt")
        path.write_text(text + "\n")
        print("\n" + "=" * 72)
        print("[{}]".format(name))
        print(text)
        return path

    return emit

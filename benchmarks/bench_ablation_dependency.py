"""Ablation §6 — dependency-tracked checking vs periodic TIMER polling.

The discussion proposes checking a property only when the state it reads
changes.  With a rarely-changing key, dependency tracking does a handful of
checks where the 100 ms TIMER does hundreds — at equal or better detection
latency.
"""

from repro.bench.report import format_table
from repro.bench.results import scenario
from repro.core.dependency import convert_to_dependency_triggered
from repro.kernel import Kernel
from repro.sim.units import MILLISECOND, SECOND

SPEC = """
guardrail watch {
  trigger: { TIMER(start_time, 100ms) },
  rule: { LOAD(config_errors) <= 3 },
  action: { REPORT() }
}
"""


def _run(dependency, duration=30 * SECOND, change_every=5 * SECOND):
    kernel = Kernel(seed=52)
    monitor = kernel.guardrails.load(SPEC)
    trigger = None
    if dependency:
        trigger = convert_to_dependency_triggered(monitor,
                                                  min_spacing=10 * MILLISECOND)

    # The watched key changes rarely; the violation happens mid-run.
    def change(step=0):
        kernel.store.save("config_errors", 10 if step == 3 else step % 2)
        if kernel.now < duration:
            kernel.engine.schedule(change_every, change, step + 1)

    change()
    kernel.run(until=duration)
    first = monitor.violations[0].time if monitor.violations else None
    violation_at = 3 * change_every
    return {
        "checks": monitor.check_count,
        "delay_ms": None if first is None else (first - violation_at) / MILLISECOND,
        "overhead_ns": monitor.overhead.simulated_ns,
        "suppressed": trigger.suppressed_count if trigger else 0,
    }


@scenario(cost=0.3, seed=52)
def run_dependency_ablation(report=None):
    results = {
        "periodic TIMER 100ms": _run(dependency=False),
        "dependency-tracked": _run(dependency=True),
    }
    metrics = {}
    for name, prefix in (("periodic TIMER 100ms", "periodic"),
                         ("dependency-tracked", "tracked")):
        for key in ("checks", "delay_ms", "overhead_ns", "suppressed"):
            metrics["{}_{}".format(prefix, key)] = results[name][key]

    if report is not None:
        rows = [
            [name, r["checks"], r["delay_ms"], r["overhead_ns"]]
            for name, r in results.items()
        ]
        report("ablation_dependency", format_table(
            ["checking strategy", "checks in 30s", "detection delay ms",
             "overhead ns"],
            rows,
            title="§6 ablation: periodic vs dependency-tracked checking"))
    return metrics


def scenarios():
    return [("ablation_dependency", run_dependency_ablation)]


def test_dependency_ablation(benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_dependency_ablation, kwargs={"report": report_sink},
        rounds=1, iterations=1)

    assert metrics["tracked_checks"] < metrics["periodic_checks"] / 10
    assert metrics["tracked_overhead_ns"] < metrics["periodic_overhead_ns"] / 10
    # Dependency tracking reacts at the change itself — no polling delay.
    assert metrics["tracked_delay_ms"] == 0.0
    assert metrics["periodic_delay_ms"] >= 0.0

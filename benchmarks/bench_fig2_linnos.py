"""Figure 2 — I/O latency moving average, LinnOS vs LinnOS + guardrails.

Regenerates the paper's only quantitative artifact: the false-submit
guardrail (Listing 2, executed verbatim) triggers after mid-run drift and
the moving average of I/O latencies improves relative to unguarded LinnOS.

Shape checks (not absolute numbers):
- pre-drift, LinnOS beats the round-robin baseline;
- post-drift, unguarded LinnOS is the worst configuration;
- the guardrail fires within a few checks of the drift and post-trigger
  latency drops below unguarded LinnOS.
"""

from repro.bench.report import format_series, format_table
from repro.bench.results import scenario
from repro.bench.scenarios import (
    run_figure2_scenario,
    train_default_linnos_model,
)
from repro.sim.units import SECOND

DRIFT_AT_S = 6
DURATION_S = 16


@scenario(quick=False, cost=8.0, seed=2)
def run_figure2(model=None, report=None):
    """The full three-mode Figure 2 run; returns the summary-table metrics."""
    if model is None:
        model = train_default_linnos_model(seed=1, train_seconds=15)
    results = {
        mode: run_figure2_scenario(model, mode, seed=2,
                                   drift_at_s=DRIFT_AT_S,
                                   duration_s=DURATION_S)
        for mode in ("baseline", "linnos", "guarded")
    }

    guarded = results["guarded"]
    saves = guarded.kernel.reporter.notes_for(kind="SAVE")
    trigger_s = saves[0]["time"] / SECOND if saves else None

    metrics = {"trigger_s": trigger_s}
    for mode, result in results.items():
        metrics[mode + "_pre_drift_us"] = round(
            result.mean_between(1, DRIFT_AT_S), 3)
        metrics[mode + "_post_drift_us"] = round(
            result.mean_between(DRIFT_AT_S + 2, DURATION_S), 3)
        metrics[mode + "_false_submits"] = result.false_submits
        metrics[mode + "_ml_enabled"] = result.ml_enabled

    if report is not None:
        lines = []
        for mode, result in results.items():
            times, averages = result.moving_average(window=200)
            sampled = list(zip(
                (round(t / SECOND, 1) for t in times[::400]), averages[::400]
            ))
            lines.append(format_series(
                "moving average of I/O latency — {}".format(mode),
                sampled, unit="us"))
            lines.append("")
        rows = [
            [mode,
             metrics[mode + "_pre_drift_us"],
             metrics[mode + "_post_drift_us"],
             metrics[mode + "_false_submits"],
             metrics[mode + "_ml_enabled"]]
            for mode in results
        ]
        lines.append(format_table(
            ["mode", "pre-drift us", "post-drift us", "false submits",
             "ml enabled"],
            rows, title="Figure 2 summary (drift at t={}s)".format(
                DRIFT_AT_S)))
        lines.append("guardrail trigger time: t={}s".format(trigger_s))
        report("fig2_linnos", "\n".join(lines))
    return metrics


def scenarios():
    return [("fig2_linnos", run_figure2)]


def test_figure2(linnos_model, benchmark, report_sink):
    metrics = benchmark.pedantic(
        run_figure2, kwargs={"model": linnos_model, "report": report_sink},
        rounds=1, iterations=1)

    # -- shape assertions --------------------------------------------------
    assert metrics["linnos_pre_drift_us"] < metrics["baseline_pre_drift_us"] * 0.7
    assert metrics["linnos_post_drift_us"] > metrics["baseline_post_drift_us"]
    assert metrics["guarded_post_drift_us"] < metrics["linnos_post_drift_us"]
    trigger_s = metrics["trigger_s"]
    assert trigger_s is not None and DRIFT_AT_S < trigger_s <= DRIFT_AT_S + 3

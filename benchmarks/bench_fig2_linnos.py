"""Figure 2 — I/O latency moving average, LinnOS vs LinnOS + guardrails.

Regenerates the paper's only quantitative artifact: the false-submit
guardrail (Listing 2, executed verbatim) triggers after mid-run drift and
the moving average of I/O latencies improves relative to unguarded LinnOS.

Shape checks (not absolute numbers):
- pre-drift, LinnOS beats the round-robin baseline;
- post-drift, unguarded LinnOS is the worst configuration;
- the guardrail fires within a few checks of the drift and post-trigger
  latency drops below unguarded LinnOS.
"""

from repro.bench.report import format_series, format_table
from repro.bench.scenarios import run_figure2_scenario
from repro.sim.units import SECOND

DRIFT_AT_S = 6
DURATION_S = 16


def test_figure2(linnos_model, benchmark, report_sink):
    def run_all():
        return {
            mode: run_figure2_scenario(linnos_model, mode, seed=2,
                                       drift_at_s=DRIFT_AT_S,
                                       duration_s=DURATION_S)
            for mode in ("baseline", "linnos", "guarded")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = []
    for mode, result in results.items():
        times, averages = result.moving_average(window=200)
        sampled = list(zip(
            (round(t / SECOND, 1) for t in times[::400]), averages[::400]
        ))
        lines.append(format_series(
            "moving average of I/O latency — {}".format(mode),
            sampled, unit="us"))
        lines.append("")

    guarded = results["guarded"]
    saves = guarded.kernel.reporter.notes_for(kind="SAVE")
    trigger_s = saves[0]["time"] / SECOND if saves else None

    rows = [
        [mode,
         result.mean_between(1, DRIFT_AT_S),
         result.mean_between(DRIFT_AT_S + 2, DURATION_S),
         result.false_submits,
         result.ml_enabled]
        for mode, result in results.items()
    ]
    lines.append(format_table(
        ["mode", "pre-drift us", "post-drift us", "false submits",
         "ml enabled"],
        rows, title="Figure 2 summary (drift at t={}s)".format(DRIFT_AT_S)))
    lines.append("guardrail trigger time: t={}s".format(trigger_s))
    report_sink("fig2_linnos", "\n".join(lines))

    # -- shape assertions --------------------------------------------------
    base_pre = results["baseline"].mean_between(1, DRIFT_AT_S)
    lin_pre = results["linnos"].mean_between(1, DRIFT_AT_S)
    assert lin_pre < base_pre * 0.7

    base_post = results["baseline"].mean_between(DRIFT_AT_S + 2, DURATION_S)
    lin_post = results["linnos"].mean_between(DRIFT_AT_S + 2, DURATION_S)
    grd_post = guarded.mean_between(DRIFT_AT_S + 2, DURATION_S)
    assert lin_post > base_post
    assert grd_post < lin_post
    assert trigger_s is not None and DRIFT_AT_S < trigger_s <= DRIFT_AT_S + 3

"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` for PEP 660 editable installs with this
setuptools version; offline boxes may not have it.  ``python setup.py
develop`` (or ``pip install -e . --no-use-pep517``) works without it.
"""

from setuptools import setup

setup()

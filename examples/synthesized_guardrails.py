"""§3.3 automation: synthesize guardrails from a policy manifest,
then auto-tighten a relaxed threshold from observed behavior.

The learned cache policy declares a manifest (reward metric = hit rate,
baseline = shadow random cache, fallback = random eviction); the
synthesizer expands it into P4 and P5 guardrails without hand-written DSL.
A relaxed page-fault-latency guardrail is then tightened automatically
toward the observed p99.

Run:  python examples/synthesized_guardrails.py
"""

import numpy as np

from repro.core.synthesis import PolicyManifest, synthesize_guardrails
from repro.core.tightening import AutoTightener
from repro.kernel import Kernel
from repro.kernel.cache import KvCache, random_evict
from repro.kernel.mm import PageFaultHandler
from repro.policies.cachepol import attach_learned_cache_policy
from repro.sim.units import SECOND


def main():
    kernel = Kernel(seed=21)
    cache = kernel.attach("cache", KvCache(kernel, capacity=64))
    cache.add_shadow("random", random_evict(kernel.engine.rng.get("shadow")))
    attach_learned_cache_policy(kernel, cache)

    manifest = PolicyManifest(
        name="cache_policy",
        slot="cache.evict",
        fallback="cache.random",
        reward_key="cache.hit_rate",
        baseline_key="cache.random.hit_rate",
        quality_margin=0.02,
    )
    specs = synthesize_guardrails(manifest)
    print("synthesized properties:", ", ".join(sorted(specs)))
    print("\n--- generated P4 guardrail ---")
    print(specs["P4"])
    for spec in specs.values():
        kernel.guardrails.load(spec)

    # Drive a zipf workload so the synthesized guardrails have data.
    rng = np.random.default_rng(0)

    def access(step=0):
        cache.access(int(rng.zipf(1.3)) % 300)
        if step < 4000:
            kernel.engine.schedule(2_000_000, access, step + 1)

    access()

    # §3.3 auto-tightening: start the fault-latency bound relaxed at 50 ms
    # and let observed behavior pull it down.
    faults = kernel.attach("mm", PageFaultHandler(kernel))

    def fault_loop(step=0):
        faults.fault(address=step)
        if step < 2000:
            kernel.engine.schedule(4_000_000, fault_loop, step + 1)

    fault_loop()

    def build_spec(threshold):
        return (
            "guardrail fault-latency {{\n"
            "  trigger: {{ TIMER(start_time, 1e9) }},\n"
            "  rule:    {{ LOAD(mm.page_fault_latency_ms.avg) <= {} }},\n"
            "  action:  {{ REPORT() }}\n"
            "}}\n"
        ).format(threshold)

    tightener = AutoTightener(
        kernel.guardrails, "fault-latency", "mm.page_fault_latency_ms",
        build_spec, initial_threshold=50.0, interval=1 * SECOND,
        quantile=0.99, margin=2.0,
    ).start()

    kernel.run(until=9 * SECOND)

    print("\n--- auto-tightening trajectory (threshold in ms) ---")
    for time, threshold in tightener.history:
        print("  t={:>4.1f}s  threshold={:.4f}".format(time / SECOND, threshold))

    print("\nguardrail stats:")
    for name, stats in kernel.guardrails.stats().items():
        print("  {:32s} checks={:<4d} violations={}".format(
            name, stats["checks"], stats["violations"]))


if __name__ == "__main__":
    main()

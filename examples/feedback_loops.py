"""§6 discussion: guardrail feedback loops, detected and dampened.

Two well-meaning guardrails fight over the same switch:

- ``latency-protector`` disables the learned policy when latency is high;
- ``quality-restorer`` re-enables it when hit quality drops (because the
  fallback is worse on the common case).

Each fix triggers the other's violation: the system oscillates between
violation states — exactly the failure mode the paper's discussion
predicts.  The FeedbackDetector spots the ``ml_enabled`` flapping and
dampens the loop by disabling the younger guardrail.

Run:  python examples/feedback_loops.py
"""

from repro.core.feedback import FeedbackDetector
from repro.kernel import Kernel
from repro.sim.units import SECOND

LATENCY_PROTECTOR = """
guardrail latency-protector {
  trigger: { TIMER(start_time, 1e9) },
  rule:    { LOAD(latency_ms) <= 5 || LOAD(ml_enabled) == false }
  ,
  action:  { SAVE(ml_enabled, false) }
}
"""

QUALITY_RESTORER = """
guardrail quality-restorer {
  trigger: { TIMER(start_time, 1e9) },
  rule:    { LOAD(quality) >= 0.8 || LOAD(ml_enabled) == true },
  action:  { SAVE(ml_enabled, true) }
}
"""


def main():
    kernel = Kernel(seed=3)
    store = kernel.store
    store.save("ml_enabled", True)

    # A workload where the learned policy gives quality 0.9 but latency 8ms,
    # while the fallback gives quality 0.6 at latency 2ms: neither guardrail
    # can be satisfied together.
    def publish(step=0):
        if store.load("ml_enabled"):
            store.save("latency_ms", 8.0)
            store.save("quality", 0.9)
        else:
            store.save("latency_ms", 2.0)
            store.save("quality", 0.6)
        if step < 40:
            kernel.engine.schedule(SECOND // 2, publish, step + 1)

    publish()
    protector = kernel.guardrails.load(LATENCY_PROTECTOR)
    restorer = kernel.guardrails.load(QUALITY_RESTORER)

    detector = FeedbackDetector(kernel, window=20 * SECOND)
    kernel.run(until=12 * SECOND)

    saves = kernel.reporter.notes_for(kind="SAVE")
    print("ml_enabled writes in 12s:", len(saves))
    print("  sequence:", " -> ".join(n["detail"].split(" = ")[1] for n in saves[:10]),
          "...")

    reports = detector.scan()
    for report in reports:
        print("detected:", report)

    flapping = [r for r in reports if r.kind == "key-flapping"]
    victim = detector.dampen(kernel.guardrails, flapping[0])
    print("\ndampened by disabling:", victim)

    before = len(kernel.reporter.notes_for(kind="SAVE"))
    kernel.run(until=20 * SECOND)
    after = len(kernel.reporter.notes_for(kind="SAVE"))
    print("SAVE actions in the 8s after dampening:", after - before)
    print("ml_enabled settled at:", store.load("ml_enabled"))


if __name__ == "__main__":
    main()

"""The §2 congestion-control misbehavior: utilization collapse + recovery.

A small MLP imitates AIMD on a 100 Mbps link, then the link's capacity
quadruples (a path change).  The model keeps operating around its training
equilibrium and leaves the link three-quarters idle — "a sudden drop in
bandwidth utilization" it never recovers from.  A behavioral guardrail on
windowed utilization REPLACEs it with AIMD, which ramps up within seconds.

Run:  python examples/congestion_collapse.py
"""

from repro.bench.report import format_table
from repro.kernel import Kernel
from repro.kernel.net import BottleneckLink
from repro.policies.ccpol import install_learned_cc
from repro.sim.units import SECOND

UTILIZATION_GUARDRAIL = """
guardrail cc-utilization {
  trigger: { TIMER(start_time, 1e9) },
  rule:    { LOAD(net.utilization.avg) >= 0.5 },
  action:  { REPORT(LOAD(net.rate_mbps)), REPLACE(net.cc_update, net.aimd) }
}
"""


def run(with_guardrail):
    kernel = Kernel(seed=11)
    link = kernel.attach("net", BottleneckLink(kernel, capacity_mbps=100.0,
                                               noise_std=0.05))
    install_learned_cc(kernel, link, train_capacity=100.0)
    install_swaps = kernel.functions.slot("net.cc_update").swap_count
    monitor = None
    if with_guardrail:
        monitor = kernel.guardrails.load(UTILIZATION_GUARDRAIL,
                                         cooldown=2 * SECOND)
    link.start()
    kernel.run(until=10 * SECOND)
    link.set_capacity(400.0)      # the path changes
    kernel.run(until=25 * SECOND)

    series = kernel.metrics.series("net.utilization")
    def mean(start_s, end_s):
        window = series.window(start_s * SECOND, end_s * SECOND)
        return sum(v for _, v in window) / len(window)

    return {
        "before": mean(2, 10),
        "after": mean(15, 25),
        "violations": monitor.violation_count if monitor else 0,
        "swaps": kernel.functions.slot("net.cc_update").swap_count - install_swaps,
        "sensitivity": kernel.store.load("learned_cc.output_sensitivity"),
    }


def main():
    rows = []
    for with_guardrail in (False, True):
        result = run(with_guardrail)
        rows.append([
            "guarded" if with_guardrail else "learned CC only",
            round(result["before"], 3),
            round(result["after"], 3),
            result["violations"],
            result["swaps"],
        ])
        sensitivity = result["sensitivity"]
    print(format_table(
        ["mode", "utilization @100Mbps", "utilization @400Mbps",
         "violations", "REPLACEs"],
        rows, title="Capacity jump at t=10s (100 -> 400 Mbps)"))
    print("\nP2 note: the model's output swings {:.0f} Mbps under ~1% input "
          "noise\n(published as learned_cc.output_sensitivity) — AIMD's "
          "sign-based update\nis immune to the same noise.".format(sensitivity))


if __name__ == "__main__":
    main()

"""The paper's §5 experiment: LinnOS with and without guardrails (Figure 2).

Trains the LinnOS-style latency classifier on a pre-drift storage cluster,
then runs three deployments through a mid-run device-regime shift:

- round-robin baseline (no model),
- LinnOS (model, no guardrail),
- LinnOS + the Listing 2 false-submit guardrail.

Prints the per-second latency series (the Figure 2 curves as text) and the
trigger time.

Run:  python examples/linnos_guardrail.py
"""

from repro.bench.report import format_series, format_table
from repro.bench.scenarios import run_figure2_scenario, train_default_linnos_model
from repro.sim.units import SECOND

DRIFT_AT_S = 6
DURATION_S = 18


def main():
    print("training the LinnOS latency classifier on pre-drift I/O...")
    model = train_default_linnos_model()

    results = {
        mode: run_figure2_scenario(model, mode, drift_at_s=DRIFT_AT_S,
                                   duration_s=DURATION_S)
        for mode in ("baseline", "linnos", "guarded")
    }

    print()
    for mode, result in results.items():
        print(format_series(
            "I/O latency, {} (per-second mean)".format(mode),
            result.per_second_means(), unit="us"))
        print()

    guarded = results["guarded"]
    trigger_notes = guarded.kernel.reporter.notes_for(kind="SAVE")
    trigger_s = trigger_notes[0]["time"] / SECOND if trigger_notes else None

    rows = []
    for mode, result in results.items():
        rows.append([
            mode,
            result.mean_between(0, DRIFT_AT_S),
            result.mean_between(DRIFT_AT_S + 2, DURATION_S),
            result.false_submits,
            result.ml_enabled,
        ])
    print(format_table(
        ["mode", "pre-drift mean (us)", "post-drift mean (us)",
         "false submits", "ml enabled at end"],
        rows, title="Figure 2 summary"))

    print("\nguardrail triggered at t={}s (drift injected at t={}s)".format(
        trigger_s, DRIFT_AT_S))
    lin = results["linnos"].mean_between(DRIFT_AT_S + 2, DURATION_S)
    grd = guarded.mean_between(DRIFT_AT_S + 2, DURATION_S)
    print("post-trigger improvement: {:.0f}us -> {:.0f}us ({:.2f}x)".format(
        lin, grd, lin / grd))


if __name__ == "__main__":
    main()

"""P6 fairness/liveness: a learned scheduler that starves batch work.

A learned shortest-predicted-job-first picker optimizes turnaround for
short interactive tasks but starves the long batch task.  The P6 guardrail
("no ready task should be starved for more than 100 ms") REPLACEs the
picker with the CFS baseline.

Run:  python examples/scheduler_fairness.py
"""

from repro.bench.report import format_table
from repro.core.properties import fairness_liveness
from repro.kernel import Kernel
from repro.kernel.sched import CpuScheduler
from repro.policies.schedpol import attach_learned_sched_policy
from repro.sim.units import MILLISECOND, SECOND


def build(with_guardrail):
    kernel = Kernel(seed=7)
    sched = kernel.attach("sched", CpuScheduler(kernel))
    attach_learned_sched_policy(kernel, sched)
    sched.spawn("batch", burst_ns=50 * MILLISECOND)
    for i in range(4):
        sched.spawn("interactive{}".format(i), burst_ns=1 * MILLISECOND)
    monitor = None
    if with_guardrail:
        monitor = kernel.guardrails.load(fairness_liveness(max_wait_ms=100.0))
    kernel.run(until=5 * SECOND)
    return kernel, sched, monitor


def main():
    for with_guardrail in (False, True):
        kernel, sched, monitor = build(with_guardrail)
        title = "with P6 guardrail" if with_guardrail else "learned SJF, no guardrail"
        rows = [
            [name, s["dispatches"], round(s["executed_ms"], 1),
             round(s["max_wait_ms"], 1)]
            for name, s in sorted(sched.wait_stats().items())
        ]
        print(format_table(["task", "dispatches", "cpu (ms)", "max wait (ms)"],
                           rows, title=title))
        if monitor is not None:
            swaps = kernel.functions.slot("sched.pick_next").swap_count
            print("violations: {}   REPLACE fired: {} time(s)".format(
                monitor.violation_count, swaps))
        print()

    print("Without the guardrail the batch task starves behind the\n"
          "interactive tasks; the guardrail detects >100 ms waits and swaps\n"
          "the picker back to CFS, after which batch makes steady progress.")


if __name__ == "__main__":
    main()

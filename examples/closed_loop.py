"""The full guardrail lifecycle: detect -> disable -> retrain -> re-enable.

Extends the Figure 2 experiment with the A3 leg the paper sketches: the
false-submit guardrail disables the drifted LinnOS model *and* queues
retraining; a daemon trains a new model on the post-drift sample buffer and
re-enables it.  After one or two cycles the retrained model sticks and
beats the round-robin fallback on the new regime.

Run:  python examples/closed_loop.py
"""

from repro.bench.report import format_series, format_table
from repro.bench.scenarios import (
    run_closed_loop_scenario,
    train_default_linnos_model,
)
from repro.sim.units import SECOND

DRIFT_AT_S = 6
DURATION_S = 30


def main():
    print("training the pre-drift LinnOS model...")
    model = train_default_linnos_model(seed=1, train_seconds=15)

    print("running the closed-loop deployment...\n")
    result, daemon = run_closed_loop_scenario(
        model, seed=2, drift_at_s=DRIFT_AT_S, duration_s=DURATION_S)

    print(format_series("I/O latency (per-second mean)",
                        result.per_second_means(), unit="us"))
    print()

    events = [
        [n["time"] / SECOND, n["kind"], n["detail"]]
        for n in result.kernel.reporter.notes_for()
        if n["kind"] in ("SAVE", "RETRAIN_START", "RETRAIN_DONE")
    ]
    print(format_table(["t (s)", "event", "detail"], events,
                       title="lifecycle events"))

    print("\nretraining runs completed:", daemon.completed_count)
    print("model enabled at end     :", result.ml_enabled)
    print("latency while on fallback (8-14s): {:.0f} us".format(
        result.mean_between(8, 14)))
    print("latency after recovery (24-30s)  : {:.0f} us".format(
        result.mean_between(24, 30)))


if __name__ == "__main__":
    main()

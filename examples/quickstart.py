"""Quickstart: your first OS guardrail.

Builds a simulated kernel, loads the paper's Listing 2 guardrail verbatim,
feeds the feature store a failing metric, and watches the guardrail flip
the ``ml_enabled`` switch.

Run:  python examples/quickstart.py
"""

from repro import Kernel
from repro.sim.units import SECOND

LISTING2 = """
guardrail low-false-submit {
  trigger: {
    TIMER(start_time, 1e9) // Periodically check every 1s.
  },
  rule: {
    LOAD(false_submit_rate) <= 0.05
  },
  action: {
    SAVE(ml_enabled, false)
  }
}
"""


def main():
    kernel = Kernel(seed=0)

    # A learned policy would normally publish this; here we fake a model
    # whose false-submit rate degrades over time.
    kernel.store.save("ml_enabled", True)

    def degrade(step=0):
        rate = 0.01 * step
        kernel.store.save("false_submit_rate", rate)
        if step < 20:
            kernel.engine.schedule(SECOND // 2, degrade, step + 1)

    degrade()

    monitor = kernel.guardrails.load(LISTING2)
    print("loaded guardrail:", monitor.name)
    print("verified cost   :", monitor.compiled.verification.total_cost, "ops/check")

    kernel.run(until=12 * SECOND)

    print("\nchecks run      :", monitor.check_count)
    print("violations      :", monitor.violation_count)
    print("ml_enabled now  :", kernel.store.load("ml_enabled"))
    first = monitor.violations[0]
    print("first violation : t={:.1f}s rule={!r}".format(
        first.time / SECOND, first.rule))
    assert kernel.store.load("ml_enabled") is False
    print("\nThe guardrail detected the degrading model and disabled it.")


if __name__ == "__main__":
    main()

"""Staged guardrail rollout across a simulated fleet — and its rollback.

Listing 2 at fleet scale: every host runs the Figure 2 storage stack, and
the control plane moves the ``low-false-submit`` guardrail from a
report-only v1 to an enforcing v2 through a canary -> 25% -> 100% plan
with health gates between stages.

Two runs, same seed:

1. a clean fleet — every gate passes and v2 lands on all hosts;
2. a fleet whose canary host serves corrupted telemetry — the guardrail's
   LOAD reads NaN, every check comes back *inconclusive* (missing data is
   not a violation), the canary gate trips on the inconclusive-rate axis,
   and the control plane rolls the cohort back to v1 through
   ``GuardrailManager.update()``.

Run:  python examples/fleet_rollout.py
"""

from repro.bench.report import format_table
from repro.fleet.scenario import run_fleet_rollout

HOSTS = 4
SEED = 42


def stage_table(report, title):
    rows = []
    for entry in report["stages"]:
        gate = entry["gate"]
        rows.append([
            entry["stage"]["label"],
            entry["stage"]["target_hosts"],
            "PASS" if gate["passed"] else "TRIP",
            "{:.3f}".format(gate["measurements"]["violation_rate"]),
            "{:.3f}".format(gate["measurements"]["inconclusive_rate"]),
            "; ".join(gate["reasons"]) or "-",
        ])
    return format_table(
        ["stage", "cohort", "gate", "viol/host-s", "inconcl/host-s",
         "reasons"],
        rows, title=title)


def main():
    print("rolling out v2 to a clean {}-host fleet...\n".format(HOSTS))
    clean = run_fleet_rollout(hosts=HOSTS, seed=SEED, quick=True)
    print(stage_table(clean, "clean rollout"))
    print("\nstatus: {} — v2 on all {} host(s)\n".format(
        clean["status"], clean["stages"][-1]["stage"]["target_hosts"]))

    print("same rollout with a corrupt-telemetry canary host...\n")
    faulted = run_fleet_rollout(hosts=HOSTS, seed=SEED, fault_hosts=1,
                                quick=True)
    print(stage_table(faulted, "faulted rollout"))
    print()
    print(format_table(
        ["t (s)", "event"],
        [[event["time_s"], event["event"]] for event in faulted["timeline"]],
        title="control-plane timeline"))
    rollback = faulted["stages"][-1]["rollback"]
    print("\nstatus: {} at stage '{}' — {} host(s) rolled back to v1".format(
        faulted["status"], faulted["rolled_back_at_stage"],
        rollback["hosts"]))


if __name__ == "__main__":
    main()

"""Tiered-memory placement (background §2: Kleio / IDT / Sibyl).

A Q-learning placement policy decides which pages to migrate into the fast
tier.  On a skewed, read-heavy workload it learns to promote the hot set
and beats the promote-on-second-access heuristic.  Then the workload turns
write-intensive and random — exactly the case §2 warns such engines handle
poorly — and a decision-quality guardrail (written with the DSL's AVG
aggregate) detects the regression and falls back to the heuristic.

Run:  python examples/tiered_memory.py
"""

import numpy as np

from repro.bench.report import format_table
from repro.kernel import Kernel
from repro.kernel.mm import TieredMemory
from repro.policies.placement import attach_learned_placement
from repro.sim.units import MILLISECOND, SECOND

QUALITY_GUARDRAIL = """
guardrail tier-hit-quality {
  trigger: { TIMER(start_time, 1s) },
  rule: { AVG(mm.tier_hit_rate, 2s) >= 0.4 },
  action: {
    REPORT(AVG(mm.tier_hit_rate, 2s)),
    REPLACE(mm.tier_placement, mm.promote_on_second_access)
  }
}
"""

PHASE_SWITCH_S = 8
DURATION_S = 16


def run(with_guardrail):
    kernel = Kernel(seed=33)
    tiered = kernel.attach("tiered", TieredMemory(kernel, fast_capacity=64))
    attach_learned_placement(kernel, tiered, seed=33)
    monitor = None
    if with_guardrail:
        monitor = kernel.guardrails.load(QUALITY_GUARDRAIL,
                                         cooldown=3 * SECOND)

    rng = np.random.default_rng(0)
    hot = ["hot{}".format(i) for i in range(48)]
    phase_hits = {"skewed": [0, 0], "random-write": [0, 0]}

    def access(step=0):
        if kernel.now < PHASE_SWITCH_S * SECOND:
            page, is_write, phase = (
                hot[int(rng.integers(len(hot)))], False, "skewed")
        else:
            page, is_write, phase = (
                "rand{}".format(int(rng.integers(20_000))), True,
                "random-write")
        before = tiered.fast_hits
        tiered.access(page, is_write=is_write)
        phase_hits[phase][0] += tiered.fast_hits - before
        phase_hits[phase][1] += 1
        if kernel.now < DURATION_S * SECOND:
            kernel.engine.schedule(1 * MILLISECOND, access, step + 1)

    access()
    kernel.run(until=DURATION_S * SECOND)
    return kernel, tiered, monitor, phase_hits


def main():
    rows = []
    for with_guardrail in (False, True):
        kernel, tiered, monitor, phase_hits = run(with_guardrail)
        label = "guarded" if with_guardrail else "learned only"
        skewed = phase_hits["skewed"]
        random_phase = phase_hits["random-write"]
        rows.append([
            label,
            "{:.2f}".format(skewed[0] / skewed[1]),
            "{:.2f}".format(random_phase[0] / random_phase[1]),
            tiered.migrations,
            monitor.violation_count if monitor else 0,
            kernel.functions.slot("mm.tier_placement").swap_count,
        ])
    print(format_table(
        ["mode", "hit rate (skewed)", "hit rate (random+write)",
         "migrations", "violations", "slot swaps"],
        rows,
        title="Tiered memory: RL placement, workload shift at t={}s".format(
            PHASE_SWITCH_S)))
    print("\nOn the random write-heavy phase no placement can achieve a\n"
          "useful hit rate (every page is new); the guardrail detects the\n"
          "sustained quality drop via AVG(mm.tier_hit_rate, 2s) and swaps\n"
          "the deterministic heuristic back in, ending the learned policy's\n"
          "exploratory migrations.")


if __name__ == "__main__":
    main()
